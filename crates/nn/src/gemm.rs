// taor-lint: allow(panic::index) — dense numeric kernel: indices are derived from dimensions validated at the public boundary and bounded by the enclosing loops.
//! Cache-blocked, register-tiled GEMM for `f32` — the single hot kernel
//! under every conv/dense forward and backward pass.
//!
//! Classic BLIS-style structure: the operand matrices are cut into
//! `KC × NC` panels of B and `MC × KC` blocks of A, packed into
//! contiguous scratch so the innermost microkernel streams both with
//! unit stride, then an `MR × NR` register tile is accumulated per
//! `(i, j)` position. On x86-64 with AVX2+FMA the microkernel uses
//! twelve 256-bit accumulators (6 rows × 2 vectors of 8 lanes);
//! elsewhere a portable unrolled tile that LLVM auto-vectorises.
//!
//! Row blocks of C are distributed with rayon (`par_chunks_mut`): each
//! task packs its own A block into a thread-local scratch while the B
//! panel is packed once and shared read-only. On a single-core host the
//! adapters degrade to the caller's thread with zero overhead.
//!
//! The `nt`/`tn` entry points fold operand transposition into the pack
//! step, so backward passes never materialise a transposed matrix.

use rayon::prelude::*;
use std::cell::RefCell;

/// Microkernel tile rows.
pub const MR: usize = 6;
/// Microkernel tile columns (two 8-lane AVX2 vectors).
pub const NR: usize = 16;
/// Small-`m` microkernel tile rows. Conv layers in this workspace have
/// 8–25 output channels, so a 6-row tile wastes up to half its row slots
/// on the `m`-edge; a 4×24 tile keeps the same twelve accumulators fully
/// utilised for `m ∈ {4, 8, 12, 16}` and much closer for the rest.
pub const MR_S: usize = 4;
/// Small-`m` microkernel tile columns (three 8-lane AVX2 vectors).
pub const NR_S: usize = 24;
/// `m` at or below which the small-`m` tile shape is selected. Tile
/// shape only changes which output elements share registers — each
/// element's k-fold is the same sequential FMA chain either way, so the
/// switch is bit-invisible.
const SMALL_M: usize = 16;
/// Rows of C per parallel task (multiple of `MR`).
pub const MC: usize = 72;
/// Depth of one packed slice of A/B (L1-resident panel depth).
pub const KC: usize = 256;
/// Columns of B packed per outer iteration (multiple of `NR`).
pub const NC: usize = 1024;

/// How the logical `A[m,k]`/`B[k,n]` operands are stored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Layout {
    /// `a` is `[m,k]`, `b` is `[k,n]` — plain product.
    Nn,
    /// `a` is `[m,k]`, `b` is `[n,k]` — product with Bᵀ.
    Nt,
    /// `a` is `[k,m]`, `b` is `[k,n]` — product with Aᵀ.
    Tn,
}

thread_local! {
    /// Per-thread packed-A scratch (`MC × KC` worst case).
    static PACKED_A: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
}

/// `C = A·B` (or `+=` with `accumulate`): `a` is `[m,k]`, `b` is
/// `[k,n]`, `c` is `[m,n]`, all row-major and contiguous.
pub fn gemm_nn(
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    accumulate: bool,
) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    // Skinny products skip packing entirely; the fold per output
    // element is identical, so the dispatch is bit-invisible.
    if m <= SMALL_M {
        return gemm_nn_kseq(m, n, k, a, b, c, accumulate);
    }
    gemm(m, n, k, a, b, c, accumulate, Layout::Nn)
}

/// Skinny-`m` `C = A·B` (or `+=`) with **no packing**, bit-identical to
/// the packed path: every output element is the same `KC`-chunked
/// ascending-`k` fold (FMA chain from zero per chunk on AVX2, mul-then-
/// add on the portable path). B's rows are contiguous in `j`, so the
/// inner loop vectorises over output columns and streams B once per
/// pair of A rows.
fn gemm_nn_kseq(
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    accumulate: bool,
) {
    debug_assert_eq!(c.len(), m * n);
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        if !accumulate {
            c.fill(0.0);
        }
        return;
    }
    for pc in (0..k).step_by(KC) {
        let kc = KC.min(k - pc);
        let acc_this = accumulate || pc > 0;
        kseq_nn_block(m, n, kc, k, pc, 1, a, b, pc, c, acc_this);
    }
}

/// `C = Aᵀ·B` (or `+=`) without packing — the dcol (`k = OC`) and
/// per-row dense-dW (`k = 1`) shapes, where packing and tile overhead
/// dwarf the short folds. Same `KC`-chunked per-element chain as the
/// packed path; `at` is `[k, m]`, so the only difference from the NN
/// variant is the A addressing (per-row stride 1, per-k step `m`).
pub fn gemm_tn_kseq(
    m: usize,
    n: usize,
    k: usize,
    at: &[f32],
    b: &[f32],
    c: &mut [f32],
    accumulate: bool,
) {
    debug_assert_eq!(at.len(), k * m);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        if !accumulate {
            c.fill(0.0);
        }
        return;
    }
    for pc in (0..k).step_by(KC) {
        let kc = KC.min(k - pc);
        let acc_this = accumulate || pc > 0;
        kseq_nn_block(m, n, kc, 1, pc * m, m, at, b, pc, c, acc_this);
    }
}

/// One KC block of [`gemm_nn_kseq`]: dispatches to the FMA or portable
/// inner loop so the chunk fold matches whichever packed microkernel
/// this host runs.
/// A's element for logical `(i, p)` sits at `i·ars + aoff + p·astep`:
/// `(k, pc, 1)` for row-major A (NN), `(1, pc·m, m)` for `[k, m]`
/// transposed A (TN).
#[allow(clippy::too_many_arguments)]
fn kseq_nn_block(
    m: usize,
    n: usize,
    kc: usize,
    ars: usize,
    aoff: usize,
    astep: usize,
    a: &[f32],
    b: &[f32],
    pc: usize,
    c: &mut [f32],
    accumulate: bool,
) {
    #[cfg(target_arch = "x86_64")]
    if have_avx2_fma() {
        // SAFETY: AVX2+FMA presence was runtime-checked above.
        unsafe {
            kseq_nn_block_avx2(m, n, kc, ars, aoff, astep, a, b, pc, c, accumulate);
        }
        return;
    }
    for i in 0..m {
        let abase = i * ars + aoff;
        for j in 0..n {
            let mut acc = 0.0f32;
            // Mul-then-add per step: the portable microkernel's fold.
            for p in 0..kc {
                acc += a[abase + p * astep] * b[(pc + p) * n + j];
            }
            let idx = i * n + j;
            if accumulate {
                c[idx] += acc;
            } else {
                c[idx] = acc;
            }
        }
    }
}

/// AVX2+FMA inner loop of [`gemm_nn_kseq`]: 2 A-rows × 32 output
/// columns in eight independent accumulator chains; each element's fold
/// is the same ascending-`k` FMA chain from zero as the packed
/// microkernels'.
///
/// # Safety
/// Caller must ensure AVX2 and FMA are available.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
#[allow(clippy::too_many_arguments)]
unsafe fn kseq_nn_block_avx2(
    m: usize,
    n: usize,
    kc: usize,
    ars: usize,
    aoff: usize,
    astep: usize,
    a: &[f32],
    b: &[f32],
    pc: usize,
    c: &mut [f32],
    accumulate: bool,
) {
    use std::arch::x86_64::*;
    /// Store 4 accumulator vectors into one C row segment.
    ///
    /// # Safety
    /// `dst..dst+32` must be in bounds of the row.
    #[target_feature(enable = "avx2,fma")]
    unsafe fn store4(dst: *mut f32, acc: [__m256; 4], accumulate: bool) {
        // SAFETY: caller guarantees 32 in-bounds floats at `dst`.
        unsafe {
            for (v, &av) in acc.iter().enumerate() {
                let d = dst.add(8 * v);
                if accumulate {
                    _mm256_storeu_ps(d, _mm256_add_ps(_mm256_loadu_ps(d), av));
                } else {
                    _mm256_storeu_ps(d, av);
                }
            }
        }
    }
    // SAFETY: the caller guarantees AVX2+FMA; every pointer stays inside
    // `a`/`b`/`c`: full 32-column blocks read `b[(pc+p)·n + jb .. +32]`
    // and write `c[i·n + jb .. +32]` with `jb + 32 <= n`, and the column
    // tail uses safe indexing.
    unsafe {
        let nb = n - n % 32;
        let mut jb = 0;
        while jb < nb {
            let mut i = 0;
            while i + 2 <= m {
                let a0 = a.as_ptr().add(i * ars + aoff);
                let a1 = a.as_ptr().add((i + 1) * ars + aoff);
                let mut bp = b.as_ptr().add(pc * n + jb);
                let mut r0 = [_mm256_setzero_ps(); 4];
                let mut r1 = [_mm256_setzero_ps(); 4];
                for p in 0..kc {
                    let av0 = _mm256_broadcast_ss(&*a0.add(p * astep));
                    let av1 = _mm256_broadcast_ss(&*a1.add(p * astep));
                    for v in 0..4 {
                        let bv = _mm256_loadu_ps(bp.add(8 * v));
                        r0[v] = _mm256_fmadd_ps(av0, bv, r0[v]);
                        r1[v] = _mm256_fmadd_ps(av1, bv, r1[v]);
                    }
                    bp = bp.add(n);
                }
                store4(c.as_mut_ptr().add(i * n + jb), r0, accumulate);
                store4(c.as_mut_ptr().add((i + 1) * n + jb), r1, accumulate);
                i += 2;
            }
            if i < m {
                let a0 = a.as_ptr().add(i * ars + aoff);
                let mut bp = b.as_ptr().add(pc * n + jb);
                let mut r0 = [_mm256_setzero_ps(); 4];
                for p in 0..kc {
                    let av0 = _mm256_broadcast_ss(&*a0.add(p * astep));
                    for (v, r) in r0.iter_mut().enumerate() {
                        *r = _mm256_fmadd_ps(av0, _mm256_loadu_ps(bp.add(8 * v)), *r);
                    }
                    bp = bp.add(n);
                }
                store4(c.as_mut_ptr().add(i * n + jb), r0, accumulate);
            }
            jb += 32;
        }
        // Column tail in 8-wide (masked past `n`) vector blocks — a
        // scalar tail would serialise one long fmadd chain per element
        // and dominate tall-`k` products. Masked lanes load zero, get
        // folded, and are discarded at the store; the per-element fold
        // is the same FMA chain as the main blocks.
        let mut jb = nb;
        while jb < n {
            let cols = (n - jb).min(8);
            let mask = {
                let mut lanes = [0i32; 8];
                for l in &mut lanes[..cols] {
                    *l = -1;
                }
                _mm256_loadu_si256(lanes.as_ptr().cast())
            };
            let store_cols = |c: &mut [f32], acc: __m256, i: usize| {
                let mut spill = [0.0f32; 8];
                // Storing 8 floats into an 8-float stack buffer (covered by
                // the enclosing unsafe block's safety argument).
                _mm256_storeu_ps(spill.as_mut_ptr(), acc);
                for (j, &v) in spill.iter().enumerate().take(cols) {
                    let idx = i * n + jb + j;
                    if accumulate {
                        c[idx] += v;
                    } else {
                        c[idx] = v;
                    }
                }
            };
            let mut i = 0;
            while i < m {
                let rows = (m - i).min(2);
                let a0 = a.as_ptr().add(i * ars + aoff);
                let a1 = a.as_ptr().add((i + rows - 1) * ars + aoff);
                let mut bp = b.as_ptr().add(pc * n + jb);
                let mut r0 = _mm256_setzero_ps();
                let mut r1 = _mm256_setzero_ps();
                for p in 0..kc {
                    let bv = _mm256_maskload_ps(bp, mask);
                    r0 = _mm256_fmadd_ps(_mm256_broadcast_ss(&*a0.add(p * astep)), bv, r0);
                    r1 = _mm256_fmadd_ps(_mm256_broadcast_ss(&*a1.add(p * astep)), bv, r1);
                    bp = bp.add(n);
                }
                store_cols(c, r0, i);
                if rows == 2 {
                    store_cols(c, r1, i + 1);
                }
                i += rows;
            }
            jb += 8;
        }
    }
}

/// `C = A·Bᵀ`: `a` is `[m,k]`, `bt` is `[n,k]` — the dense backward
/// `dx = g · Wᵀ` shape, without materialising `Wᵀ`.
pub fn gemm_nt(
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    bt: &[f32],
    c: &mut [f32],
    accumulate: bool,
) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(bt.len(), n * k);
    // Skinny products skip packing entirely; the fold per output
    // element is identical, so the dispatch is bit-invisible.
    if m <= SMALL_M {
        return gemm_nt_kseq(m, n, k, a, k, bt, k, c, accumulate);
    }
    gemm(m, n, k, a, bt, c, accumulate, Layout::Nt)
}

/// `C = Aᵀ·B`: `at` is `[k,m]`, `b` is `[k,n]` — the weight-gradient
/// `dW = xᵀ · g` shape, without materialising `xᵀ`.
pub fn gemm_tn(
    m: usize,
    n: usize,
    k: usize,
    at: &[f32],
    b: &[f32],
    c: &mut [f32],
    accumulate: bool,
) {
    debug_assert_eq!(at.len(), k * m);
    debug_assert_eq!(b.len(), k * n);
    // Skinny or short-fold products (dcol's k = OC, dense-dW's k = 1)
    // skip packing; the fold per element is identical either way.
    if m <= SMALL_M || k <= SMALL_M {
        return gemm_tn_kseq(m, n, k, at, b, c, accumulate);
    }
    gemm(m, n, k, at, b, c, accumulate, Layout::Tn)
}

/// Skinny-`m` `C = A·Bᵀ` (or `+=`) with **strided operands and no
/// packing**, bit-identical to the packed kernels: rows of `a` start at
/// `i·lda`, rows of `bt` at `j·ldb` (so conv's per-item dW products can
/// read the batched `gy`/im2col buffers in place), and each output
/// element is the same `KC`-chunked ascending-`k` fold — an FMA chain
/// from zero per chunk on AVX2, a mul-then-add chain on the portable
/// path — that the packed microkernels compute, so swapping kernels
/// never moves a bit. Packing dominates the packed path at these shapes
/// (a per-item dW product spends ~90% of its time in `pack_b`); this
/// entry point exists purely to delete that cost.
#[allow(clippy::too_many_arguments)]
pub fn gemm_nt_kseq(
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    lda: usize,
    bt: &[f32],
    ldb: usize,
    c: &mut [f32],
    accumulate: bool,
) {
    debug_assert_eq!(c.len(), m * n);
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        if !accumulate {
            c.fill(0.0);
        }
        return;
    }
    debug_assert!(lda >= k && ldb >= k);
    debug_assert!(a.len() >= (m - 1) * lda + k);
    debug_assert!(bt.len() >= (n - 1) * ldb + k);
    // A transposed per KC block into lane-padded scratch: at[p·lanes + i]
    // = a[i·lda + pc + p], zero in the pad lanes (computed, discarded).
    let lanes = m.next_multiple_of(8);
    let mut at = crate::scratch::Scratch::take(KC.min(k) * lanes);
    for pc in (0..k).step_by(KC) {
        let kc = KC.min(k - pc);
        // First chunk honours the caller's flag; later chunks always
        // accumulate — the same chunk fold the packed path produces.
        let acc_this = accumulate || pc > 0;
        for i in 0..lanes {
            if i < m {
                let src = &a[i * lda + pc..i * lda + pc + kc];
                for (p, &v) in src.iter().enumerate() {
                    at[p * lanes + i] = v;
                }
            } else {
                for p in 0..kc {
                    at[p * lanes + i] = 0.0;
                }
            }
        }
        kseq_nt_block(m, n, kc, lanes, &at, bt, ldb, pc, c, acc_this);
    }
}

/// One KC block of [`gemm_nt_kseq`]: dispatches to the FMA or portable
/// inner loop so the chunk fold matches whichever packed microkernel
/// this host runs.
#[allow(clippy::too_many_arguments)]
fn kseq_nt_block(
    m: usize,
    n: usize,
    kc: usize,
    lanes: usize,
    at: &[f32],
    bt: &[f32],
    ldb: usize,
    pc: usize,
    c: &mut [f32],
    accumulate: bool,
) {
    #[cfg(target_arch = "x86_64")]
    if have_avx2_fma() {
        // SAFETY: AVX2+FMA presence was runtime-checked above.
        unsafe {
            kseq_nt_block_avx2(m, n, kc, lanes, at, bt, ldb, pc, c, accumulate);
        }
        return;
    }
    for j in 0..n {
        let brow = &bt[j * ldb + pc..j * ldb + pc + kc];
        for i in 0..m {
            let mut acc = 0.0f32;
            // Mul-then-add per step: the portable microkernel's fold.
            for (p, &bv) in brow.iter().enumerate() {
                acc += at[p * lanes + i] * bv;
            }
            let idx = i * n + j;
            if accumulate {
                c[idx] += acc;
            } else {
                c[idx] = acc;
            }
        }
    }
}

/// AVX2+FMA inner loop of [`gemm_nt_kseq`]: eight output rows share one
/// accumulator vector; each lane's fold is the same ascending-`k` FMA
/// chain from zero as the packed microkernels'.
///
/// # Safety
/// Caller must ensure AVX2 and FMA are available.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
#[allow(clippy::too_many_arguments)]
unsafe fn kseq_nt_block_avx2(
    m: usize,
    n: usize,
    kc: usize,
    lanes: usize,
    at: &[f32],
    bt: &[f32],
    ldb: usize,
    pc: usize,
    c: &mut [f32],
    accumulate: bool,
) {
    use std::arch::x86_64::*;
    // SAFETY: the caller guarantees AVX2+FMA; `at` holds `kc * lanes`
    // floats with `lanes` a multiple of 8, each `brow` slice is bounds-
    // checked safe Rust, and stores go through a stack spill plus safe
    // indexing of `c`.
    unsafe {
        let store = |c: &mut [f32], acc: __m256, g: usize, j: usize| {
            let mut spill = [0.0f32; 8];
            // Storing 8 floats into an 8-float stack buffer (covered by
            // the enclosing unsafe block's safety argument).
            _mm256_storeu_ps(spill.as_mut_ptr(), acc);
            for (r, &v) in spill.iter().enumerate().take(m - g.min(m)) {
                let idx = (g + r) * n + j;
                if accumulate {
                    c[idx] += v;
                } else {
                    c[idx] = v;
                }
            }
        };
        for g in (0..lanes).step_by(8) {
            let at_g = at.as_ptr().add(g);
            let mut j = 0;
            // Four output columns per pass: four independent FMA chains
            // hide the ~4-cycle fmadd latency a single serial chain
            // would expose. Each (i, j) element still owns its own
            // ascending-k chain, so the unroll is bit-invisible.
            while j + 4 <= n {
                let b0 = &bt[j * ldb + pc..j * ldb + pc + kc];
                let b1 = &bt[(j + 1) * ldb + pc..(j + 1) * ldb + pc + kc];
                let b2 = &bt[(j + 2) * ldb + pc..(j + 2) * ldb + pc + kc];
                let b3 = &bt[(j + 3) * ldb + pc..(j + 3) * ldb + pc + kc];
                let mut acc0 = _mm256_setzero_ps();
                let mut acc1 = _mm256_setzero_ps();
                let mut acc2 = _mm256_setzero_ps();
                let mut acc3 = _mm256_setzero_ps();
                let mut ap = at_g;
                for p in 0..kc {
                    let av = _mm256_loadu_ps(ap);
                    acc0 = _mm256_fmadd_ps(av, _mm256_broadcast_ss(b0.get_unchecked(p)), acc0);
                    acc1 = _mm256_fmadd_ps(av, _mm256_broadcast_ss(b1.get_unchecked(p)), acc1);
                    acc2 = _mm256_fmadd_ps(av, _mm256_broadcast_ss(b2.get_unchecked(p)), acc2);
                    acc3 = _mm256_fmadd_ps(av, _mm256_broadcast_ss(b3.get_unchecked(p)), acc3);
                    ap = ap.add(lanes);
                }
                store(c, acc0, g, j);
                store(c, acc1, g, j + 1);
                store(c, acc2, g, j + 2);
                store(c, acc3, g, j + 3);
                j += 4;
            }
            while j < n {
                let brow = &bt[j * ldb + pc..j * ldb + pc + kc];
                let mut acc = _mm256_setzero_ps();
                let mut ap = at_g;
                for &bv in brow {
                    let bvv = _mm256_broadcast_ss(&bv);
                    acc = _mm256_fmadd_ps(_mm256_loadu_ps(ap), bvv, acc);
                    ap = ap.add(lanes);
                }
                store(c, acc, g, j);
                j += 1;
            }
        }
    }
}

/// Reference kernel: the seed's naive ikj loop, kept for property tests
/// and as the bench baseline the blocked kernel is measured against.
pub fn matmul_naive(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    c[..m * n].fill(0.0);
    for i in 0..m {
        for kk in 0..k {
            let av = a[i * k + kk];
            // taor-lint: allow(float::eq) — sparsity skip: only a bit-exact zero may be elided
            if av == 0.0 {
                continue;
            }
            let row = &b[kk * n..(kk + 1) * n];
            let dst = &mut c[i * n..(i + 1) * n];
            for (d, &bv) in dst.iter_mut().zip(row) {
                *d += av * bv;
            }
        }
    }
}

#[cfg(target_arch = "x86_64")]
fn have_avx2_fma() -> bool {
    // Miri interprets portable Rust, not vendor intrinsics: force the
    // scalar path so `cargo miri test` exercises the same kernels it
    // can actually check.
    if cfg!(miri) {
        return false;
    }
    use std::sync::OnceLock;
    static DETECTED: OnceLock<bool> = OnceLock::new();
    *DETECTED.get_or_init(|| {
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
    })
}

#[allow(clippy::too_many_arguments)]
fn gemm(
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    accumulate: bool,
    layout: Layout,
) {
    debug_assert_eq!(c.len(), m * n);
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        if !accumulate {
            c.fill(0.0);
        }
        return;
    }
    // Tile shape: small-`m` products (conv forward/dW with few output
    // channels) use the 4×24 kernel, everything else the 6×16 one.
    let (mr, nr) = if m <= SMALL_M { (MR_S, NR_S) } else { (MR, NR) };
    // Shared packed-B panel for the current (jc, pc) iteration, recycled
    // through the arena — the batched trainer issues many small dW
    // products per step and a heap allocation each would dominate them.
    // Sized for the widest panel, rounded up to whole `nr` tiles (NC is
    // a multiple of NR but not of NR_S).
    let mut packed_b = crate::scratch::Scratch::take(KC.min(k) * NC.min(n).next_multiple_of(nr));

    for jc in (0..n).step_by(NC) {
        let nc = NC.min(n - jc);
        let nc_tiles = nc.div_ceil(nr);
        for pc in (0..k).step_by(KC) {
            let kc = KC.min(k - pc);
            pack_b(&mut packed_b, b, n, k, jc, pc, nc, kc, nr, layout);
            // First k-slice either overwrites or accumulates depending
            // on the caller's flag; later slices always accumulate.
            let acc_this = accumulate || pc > 0;
            let pb: &[f32] = &packed_b;
            c.par_chunks_mut(MC * n).enumerate().for_each(|(bi, cblock)| {
                let ic = bi * MC;
                let mc = MC.min(m - ic);
                PACKED_A.with(|pa_cell| {
                    let mut pa = pa_cell.borrow_mut();
                    pa.resize(MC * KC, 0.0);
                    pack_a(&mut pa, a, m, k, ic, pc, mc, kc, mr, layout);
                    for it in 0..mc.div_ceil(mr) {
                        let rows = mr.min(mc - it * mr);
                        for jt in 0..nc_tiles {
                            let cols = nr.min(nc - jt * nr);
                            microkernel(
                                &pa[it * mr * kc..],
                                &pb[jt * nr * kc..],
                                kc,
                                cblock,
                                it * mr,
                                jc + jt * nr,
                                n,
                                rows,
                                cols,
                                acc_this,
                                mr,
                            );
                        }
                    }
                });
            });
        }
    }
}

/// Pack the `mc × kc` block of A at `(ic, pc)` as `ceil(mc/mr)` tiles,
/// each stored k-major with `mr` consecutive row entries per k step
/// (zero-padded past `mc`).
#[allow(clippy::too_many_arguments)]
fn pack_a(
    pa: &mut [f32],
    a: &[f32],
    m: usize,
    k: usize,
    ic: usize,
    pc: usize,
    mc: usize,
    kc: usize,
    mr: usize,
    layout: Layout,
) {
    let _ = m;
    for it in 0..mc.div_ceil(mr) {
        let tile = &mut pa[it * mr * kc..(it + 1) * mr * kc];
        let rows = mr.min(mc - it * mr);
        match layout {
            Layout::Nn | Layout::Nt => {
                // Row-outer traversal: each source row is one contiguous
                // run of `kc` floats, scattered into the tile at stride
                // `mr` (the tile itself is L1-resident). The per-element
                // row-inner order read A at stride `k` per element and
                // thrashed on long rows; same packed bytes either way.
                for r in 0..mr {
                    if r < rows {
                        let src = &a[(ic + it * mr + r) * k + pc..][..kc];
                        for (p, &v) in src.iter().enumerate() {
                            tile[p * mr + r] = v;
                        }
                    } else {
                        for p in 0..kc {
                            tile[p * mr + r] = 0.0;
                        }
                    }
                }
            }
            Layout::Tn => {
                // A is stored `[k,m]`: rows of the logical block are
                // contiguous per k step.
                for p in 0..kc {
                    let src = &a[(pc + p) * m + ic + it * mr..];
                    for r in 0..mr {
                        tile[p * mr + r] = if r < rows { src[r] } else { 0.0 };
                    }
                }
            }
        }
    }
}

/// Pack the `kc × nc` panel of B at `(pc, jc)` as `ceil(nc/nr)` tiles,
/// each stored k-major with `nr` consecutive column entries per k step
/// (zero-padded past `nc`).
#[allow(clippy::too_many_arguments)]
fn pack_b(
    pb: &mut [f32],
    b: &[f32],
    n: usize,
    k: usize,
    jc: usize,
    pc: usize,
    nc: usize,
    kc: usize,
    nr: usize,
    layout: Layout,
) {
    match layout {
        Layout::Nn | Layout::Tn => {
            // p-outer traversal: each source row of B is one contiguous
            // `nc`-float run, cut into `nr`-wide memcpys — the dominant
            // cost of every skinny-`m` product is this pack, and the old
            // jt-outer order re-walked B at a `n`-float stride per
            // element. Same packed bytes either way.
            let n_tiles = nc.div_ceil(nr);
            for p in 0..kc {
                let src = &b[(pc + p) * n + jc..(pc + p) * n + jc + nc];
                for jt in 0..n_tiles {
                    let cols = nr.min(nc - jt * nr);
                    let dst = &mut pb[jt * nr * kc + p * nr..jt * nr * kc + (p + 1) * nr];
                    dst[..cols].copy_from_slice(&src[jt * nr..jt * nr + cols]);
                    dst[cols..].fill(0.0);
                }
            }
        }
        Layout::Nt => {
            // B is stored `[n,k]`: each packed column is one contiguous
            // source row, scattered into the (L1-resident) tile at
            // stride `nr`.
            for jt in 0..nc.div_ceil(nr) {
                let tile = &mut pb[jt * nr * kc..(jt + 1) * nr * kc];
                let cols = nr.min(nc - jt * nr);
                for cc in 0..nr {
                    if cc < cols {
                        let src = &b[(jc + jt * nr + cc) * k + pc..][..kc];
                        for (p, &v) in src.iter().enumerate() {
                            tile[p * nr + cc] = v;
                        }
                    } else {
                        for p in 0..kc {
                            tile[p * nr + cc] = 0.0;
                        }
                    }
                }
            }
        }
    }
}

/// Accumulate one `rows × cols` tile of C at `(row0, col0)` from packed
/// operand tiles (`pa`: `kc × mr`, `pb`: `kc × nr` with `nr` implied by
/// `mr`: 6×16 or 4×24).
#[allow(clippy::too_many_arguments)]
#[inline]
fn microkernel(
    pa: &[f32],
    pb: &[f32],
    kc: usize,
    c: &mut [f32],
    row0: usize,
    col0: usize,
    ldc: usize,
    rows: usize,
    cols: usize,
    accumulate: bool,
    mr: usize,
) {
    #[cfg(target_arch = "x86_64")]
    if have_avx2_fma() {
        // SAFETY: AVX2+FMA presence was runtime-checked above.
        unsafe {
            if mr == MR_S {
                microkernel_avx2_s(pa, pb, kc, c, row0, col0, ldc, rows, cols, accumulate);
            } else {
                microkernel_avx2(pa, pb, kc, c, row0, col0, ldc, rows, cols, accumulate);
            }
        }
        return;
    }
    if mr == MR_S {
        microkernel_portable::<MR_S, NR_S>(pa, pb, kc, c, row0, col0, ldc, rows, cols, accumulate);
    } else {
        microkernel_portable::<MR, NR>(pa, pb, kc, c, row0, col0, ldc, rows, cols, accumulate);
    }
}

/// Portable `TM × TN` register tile; the fixed-size inner loops
/// auto-vectorise on any SIMD target.
#[allow(clippy::too_many_arguments)]
fn microkernel_portable<const TM: usize, const TN: usize>(
    pa: &[f32],
    pb: &[f32],
    kc: usize,
    c: &mut [f32],
    row0: usize,
    col0: usize,
    ldc: usize,
    rows: usize,
    cols: usize,
    accumulate: bool,
) {
    let mut acc = [[0.0f32; TN]; TM];
    for p in 0..kc {
        let bp = &pb[p * TN..(p + 1) * TN];
        let ap = &pa[p * TM..(p + 1) * TM];
        for r in 0..TM {
            let av = ap[r];
            let dst = &mut acc[r];
            for (d, &bv) in dst.iter_mut().zip(bp) {
                *d += av * bv;
            }
        }
    }
    store_tile(&acc, c, row0, col0, ldc, rows, cols, accumulate);
}

#[allow(clippy::too_many_arguments)]
fn store_tile<const TM: usize, const TN: usize>(
    acc: &[[f32; TN]; TM],
    c: &mut [f32],
    row0: usize,
    col0: usize,
    ldc: usize,
    rows: usize,
    cols: usize,
    accumulate: bool,
) {
    for r in 0..rows {
        let dst = &mut c[(row0 + r) * ldc + col0..(row0 + r) * ldc + col0 + cols];
        if accumulate {
            for (d, &v) in dst.iter_mut().zip(&acc[r][..cols]) {
                *d += v;
            }
        } else {
            dst.copy_from_slice(&acc[r][..cols]);
        }
    }
}

/// AVX2+FMA microkernel: 6×16 tile in twelve ymm accumulators.
///
/// # Safety
/// Caller must ensure AVX2 and FMA are available.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
#[allow(clippy::too_many_arguments)]
unsafe fn microkernel_avx2(
    pa: &[f32],
    pb: &[f32],
    kc: usize,
    c: &mut [f32],
    row0: usize,
    col0: usize,
    ldc: usize,
    rows: usize,
    cols: usize,
    accumulate: bool,
) {
    use std::arch::x86_64::*;
    // SAFETY: the caller guarantees AVX2+FMA (the only contract of this
    // fn); every pointer below stays inside `pa`/`pb`/`c`: the packed
    // panels hold `kc * MR` and `kc * NR` floats, and full tiles write
    // `MR x NR` in-bounds elements of `c` (edge tiles spill to a stack
    // buffer and copy through the safe `store_tile`).
    unsafe {
        let mut acc0 = [_mm256_setzero_ps(); MR];
        let mut acc1 = [_mm256_setzero_ps(); MR];
        let mut ap = pa.as_ptr();
        let mut bp = pb.as_ptr();
        for _ in 0..kc {
            let b0 = _mm256_loadu_ps(bp);
            let b1 = _mm256_loadu_ps(bp.add(8));
            // Fully unrolled over the six rows: one broadcast feeds two FMAs.
            for r in 0..MR {
                let av = _mm256_broadcast_ss(&*ap.add(r));
                acc0[r] = _mm256_fmadd_ps(av, b0, acc0[r]);
                acc1[r] = _mm256_fmadd_ps(av, b1, acc1[r]);
            }
            ap = ap.add(MR);
            bp = bp.add(NR);
        }
        if rows == MR && cols == NR {
            for r in 0..MR {
                let dst = c.as_mut_ptr().add((row0 + r) * ldc + col0);
                if accumulate {
                    let cur0 = _mm256_loadu_ps(dst);
                    let cur1 = _mm256_loadu_ps(dst.add(8));
                    _mm256_storeu_ps(dst, _mm256_add_ps(cur0, acc0[r]));
                    _mm256_storeu_ps(dst.add(8), _mm256_add_ps(cur1, acc1[r]));
                } else {
                    _mm256_storeu_ps(dst, acc0[r]);
                    _mm256_storeu_ps(dst.add(8), acc1[r]);
                }
            }
        } else {
            // Edge tile: spill to a stack buffer, then copy the valid part.
            let mut tile = [[0.0f32; NR]; MR];
            for r in 0..MR {
                _mm256_storeu_ps(tile[r].as_mut_ptr(), acc0[r]);
                _mm256_storeu_ps(tile[r].as_mut_ptr().add(8), acc1[r]);
            }
            store_tile(&tile, c, row0, col0, ldc, rows, cols, accumulate);
        }
    }
}

/// AVX2+FMA small-`m` microkernel: 4×24 tile in twelve ymm accumulators
/// (4 rows × 3 vectors). Same per-element sequential k-fold as the 6×16
/// kernel, so both tile shapes produce bit-identical products.
///
/// # Safety
/// Caller must ensure AVX2 and FMA are available.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
#[allow(clippy::too_many_arguments)]
unsafe fn microkernel_avx2_s(
    pa: &[f32],
    pb: &[f32],
    kc: usize,
    c: &mut [f32],
    row0: usize,
    col0: usize,
    ldc: usize,
    rows: usize,
    cols: usize,
    accumulate: bool,
) {
    use std::arch::x86_64::*;
    // SAFETY: the caller guarantees AVX2+FMA; every pointer below stays
    // inside `pa`/`pb`/`c`: the packed panels hold `kc * MR_S` and
    // `kc * NR_S` floats, and full tiles write `MR_S x NR_S` in-bounds
    // elements of `c` (edge tiles spill to a stack buffer and copy
    // through the safe `store_tile`).
    unsafe {
        let mut acc0 = [_mm256_setzero_ps(); MR_S];
        let mut acc1 = [_mm256_setzero_ps(); MR_S];
        let mut acc2 = [_mm256_setzero_ps(); MR_S];
        let mut ap = pa.as_ptr();
        let mut bp = pb.as_ptr();
        for _ in 0..kc {
            let b0 = _mm256_loadu_ps(bp);
            let b1 = _mm256_loadu_ps(bp.add(8));
            let b2 = _mm256_loadu_ps(bp.add(16));
            // Fully unrolled over the four rows: one broadcast feeds
            // three FMAs.
            for r in 0..MR_S {
                let av = _mm256_broadcast_ss(&*ap.add(r));
                acc0[r] = _mm256_fmadd_ps(av, b0, acc0[r]);
                acc1[r] = _mm256_fmadd_ps(av, b1, acc1[r]);
                acc2[r] = _mm256_fmadd_ps(av, b2, acc2[r]);
            }
            ap = ap.add(MR_S);
            bp = bp.add(NR_S);
        }
        if rows == MR_S && cols == NR_S {
            for r in 0..MR_S {
                let dst = c.as_mut_ptr().add((row0 + r) * ldc + col0);
                if accumulate {
                    let cur0 = _mm256_loadu_ps(dst);
                    let cur1 = _mm256_loadu_ps(dst.add(8));
                    let cur2 = _mm256_loadu_ps(dst.add(16));
                    _mm256_storeu_ps(dst, _mm256_add_ps(cur0, acc0[r]));
                    _mm256_storeu_ps(dst.add(8), _mm256_add_ps(cur1, acc1[r]));
                    _mm256_storeu_ps(dst.add(16), _mm256_add_ps(cur2, acc2[r]));
                } else {
                    _mm256_storeu_ps(dst, acc0[r]);
                    _mm256_storeu_ps(dst.add(8), acc1[r]);
                    _mm256_storeu_ps(dst.add(16), acc2[r]);
                }
            }
        } else {
            // Edge tile: spill to a stack buffer, then copy the valid part.
            let mut tile = [[0.0f32; NR_S]; MR_S];
            for r in 0..MR_S {
                _mm256_storeu_ps(tile[r].as_mut_ptr(), acc0[r]);
                _mm256_storeu_ps(tile[r].as_mut_ptr().add(8), acc1[r]);
                _mm256_storeu_ps(tile[r].as_mut_ptr().add(16), acc2[r]);
            }
            store_tile(&tile, c, row0, col0, ldc, rows, cols, accumulate);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill_pattern(len: usize, seed: u32) -> Vec<f32> {
        // Cheap deterministic pseudo-random values in [-1, 1].
        let mut state = seed.wrapping_mul(2654435761).wrapping_add(1);
        (0..len)
            .map(|_| {
                state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                (state >> 8) as f32 / (1u32 << 23) as f32 - 1.0
            })
            .collect()
    }

    fn assert_close(a: &[f32], b: &[f32], tol: f32) {
        assert_eq!(a.len(), b.len());
        for (i, (&x, &y)) in a.iter().zip(b).enumerate() {
            assert!((x - y).abs() <= tol, "idx {i}: {x} vs {y}");
        }
    }

    #[test]
    fn blocked_matches_naive_across_shapes() {
        // Shapes straddle every blocking boundary: below MR/NR, exact
        // multiples, one past a boundary, and > KC depth.
        for &(m, n, k) in &[
            (1, 1, 1),
            (3, 5, 2),
            (6, 16, 8),
            (7, 17, 9),
            (12, 32, 300),
            (73, 33, 70),
            (25, 1025, 13),
        ] {
            let a = fill_pattern(m * k, (m * 31 + n) as u32);
            let b = fill_pattern(k * n, (n * 17 + k) as u32);
            let mut want = vec![0.0; m * n];
            matmul_naive(m, n, k, &a, &b, &mut want);
            let mut got = vec![0.0; m * n];
            gemm_nn(m, n, k, &a, &b, &mut got, false);
            assert_close(&got, &want, 1e-4 * k as f32);
        }
    }

    #[test]
    fn nt_and_tn_match_explicit_transposes() {
        let (m, n, k) = (13, 21, 17);
        let a = fill_pattern(m * k, 3);
        let b = fill_pattern(k * n, 4);
        let mut want = vec![0.0; m * n];
        matmul_naive(m, n, k, &a, &b, &mut want);

        // bt[j*k + l] = b[l*n + j]
        let mut bt = vec![0.0; n * k];
        for l in 0..k {
            for j in 0..n {
                bt[j * k + l] = b[l * n + j];
            }
        }
        let mut got = vec![0.0; m * n];
        gemm_nt(m, n, k, &a, &bt, &mut got, false);
        assert_close(&got, &want, 1e-4);

        // at[l*m + i] = a[i*k + l]
        let mut at = vec![0.0; k * m];
        for i in 0..m {
            for l in 0..k {
                at[l * m + i] = a[i * k + l];
            }
        }
        let mut got_tn = vec![0.0; m * n];
        gemm_tn(m, n, k, &at, &b, &mut got_tn, false);
        assert_close(&got_tn, &want, 1e-4);
    }

    #[test]
    fn accumulate_adds_to_existing() {
        let (m, n, k) = (9, 20, 33);
        let a = fill_pattern(m * k, 5);
        let b = fill_pattern(k * n, 6);
        let mut base = fill_pattern(m * n, 7);
        let mut want = vec![0.0; m * n];
        matmul_naive(m, n, k, &a, &b, &mut want);
        for (w, &x) in want.iter_mut().zip(&base) {
            *w += x;
        }
        gemm_nn(m, n, k, &a, &b, &mut base, true);
        assert_close(&base, &want, 1e-4);
    }

    #[test]
    fn tile_shape_is_bit_invisible() {
        // The same logical product computed through the 6×16 path (m=20)
        // and the 4×24 path (two m=10 calls over row halves) must agree
        // bitwise: every output element is the same sequential k-fold
        // regardless of tile shape. The batched trainer's per-sample /
        // batched equivalence rests on exactly this property.
        let (m, n, k) = (20, 100, 300);
        let a = fill_pattern(m * k, 11);
        let b = fill_pattern(k * n, 12);
        let mut whole = vec![0.0; m * n];
        gemm_nn(m, n, k, &a, &b, &mut whole, false);
        let mut halves = vec![0.0; m * n];
        gemm_nn(10, n, k, &a[..10 * k], &b, &mut halves[..10 * n], false);
        gemm_nn(10, n, k, &a[10 * k..], &b, &mut halves[10 * n..], false);
        assert_eq!(whole, halves);
    }

    #[test]
    fn batch_split_is_bit_invisible() {
        // Column subsets of one product equal the same columns computed
        // alone — the property that makes batched conv forward bit-equal
        // to per-sample forward.
        let (m, n, k) = (8, 96, 75);
        let a = fill_pattern(m * k, 21);
        let b = fill_pattern(k * n, 22);
        let mut whole = vec![0.0; m * n];
        gemm_nn(m, n, k, &a, &b, &mut whole, false);
        // Extract columns 32..64 of B and recompute them alone.
        let sub = 32usize;
        let mut bsub = vec![0.0; k * sub];
        for p in 0..k {
            bsub[p * sub..(p + 1) * sub].copy_from_slice(&b[p * n + 32..p * n + 64]);
        }
        let mut alone = vec![0.0; m * sub];
        gemm_nn(m, sub, k, &a, &bsub, &mut alone, false);
        for i in 0..m {
            assert_eq!(&whole[i * n + 32..i * n + 64], &alone[i * sub..(i + 1) * sub]);
        }
    }

    #[test]
    fn nt_kseq_matches_packed_kernel_bitwise() {
        // Embed the skinny A into a matrix tall enough to force the
        // packed path (m > SMALL_M), then compare its leading rows
        // against the no-pack kernel bit-for-bit: per-element folds are
        // row-independent, so both must produce identical chains. Shapes
        // cover k ≤ KC, k > KC (chunked fold), and accumulate.
        for &(m, n, k) in &[(8, 75, 560), (10, 200, 480), (4, 20, 32), (16, 33, 300), (3, 5, 7)] {
            let a = fill_pattern(m * k, (m * 7 + k) as u32);
            let bt = fill_pattern(n * k, (n * 13 + k) as u32);
            let mbig = SMALL_M + 1;
            let mut abig = a.clone();
            for r in 0..mbig - m {
                abig.extend_from_slice(&a[(r % m) * k..(r % m + 1) * k]);
            }
            for &acc in &[false, true] {
                let base = fill_pattern(m * n, 99);
                let mut want_big = {
                    let mut cb = fill_pattern(mbig * n, 99);
                    cb[..m * n].copy_from_slice(&base);
                    cb
                };
                gemm(mbig, n, k, &abig, &bt, &mut want_big, acc, Layout::Nt);
                let mut got = base.clone();
                gemm_nt_kseq(m, n, k, &a, k, &bt, k, &mut got, acc);
                for (i, (g, w)) in got.iter().zip(&want_big[..m * n]).enumerate() {
                    assert_eq!(g.to_bits(), w.to_bits(), "m={m} n={n} k={k} acc={acc} [{i}]");
                }
            }
        }
    }

    #[test]
    fn nn_kseq_matches_packed_kernel_bitwise() {
        // Same row-embedding pin as the NT variant: the packed path
        // (forced via m > SMALL_M) and the no-pack kernel must agree
        // bit-for-bit. Shapes cover the conv forward products (n ≫ 32
        // with a 32-column tail), k > KC chunking, and accumulate.
        for &(m, n, k) in &[(8, 4480, 75), (10, 60, 810), (4, 33, 32), (16, 100, 300), (3, 5, 7)] {
            let a = fill_pattern(m * k, (m * 3 + k) as u32);
            let b = fill_pattern(k * n, (n * 5 + k) as u32);
            let mbig = SMALL_M + 1;
            let mut abig = a.clone();
            for r in 0..mbig - m {
                abig.extend_from_slice(&a[(r % m) * k..(r % m + 1) * k]);
            }
            for &acc in &[false, true] {
                let base = fill_pattern(m * n, 98);
                let mut want_big = {
                    let mut cb = fill_pattern(mbig * n, 98);
                    cb[..m * n].copy_from_slice(&base);
                    cb
                };
                gemm(mbig, n, k, &abig, &b, &mut want_big, acc, Layout::Nn);
                let mut got = base.clone();
                gemm_nn_kseq(m, n, k, &a, &b, &mut got, acc);
                for (i, (g, w)) in got.iter().zip(&want_big[..m * n]).enumerate() {
                    assert_eq!(g.to_bits(), w.to_bits(), "m={m} n={n} k={k} acc={acc} [{i}]");
                }
            }
        }
    }

    #[test]
    fn tn_kseq_matches_packed_kernel_bitwise() {
        // Direct pin against the packed TN path across the dcol shape
        // (short k), the per-row dense-dW shape (k = 1), and a chunked
        // k > KC shape.
        for &(m, n, k) in &[(75, 4480, 8), (20, 32, 1), (810, 60, 10), (16, 33, 300)] {
            let at = fill_pattern(k * m, (m * 11 + k) as u32);
            let b = fill_pattern(k * n, (n * 29 + k) as u32);
            for &acc in &[false, true] {
                let mut want = fill_pattern(m * n, 97);
                let mut got = want.clone();
                gemm(m, n, k, &at, &b, &mut want, acc, Layout::Tn);
                gemm_tn_kseq(m, n, k, &at, &b, &mut got, acc);
                for (i, (g, w)) in got.iter().zip(&want).enumerate() {
                    assert_eq!(g.to_bits(), w.to_bits(), "m={m} n={n} k={k} acc={acc} [{i}]");
                }
            }
        }
    }

    #[test]
    fn nt_kseq_strided_views_match_contiguous() {
        // Operands embedded in wider row strides (the batched gy/im2col
        // buffers) must give the same bits as contiguous copies.
        let (m, n, k) = (8, 75, 60);
        let (lda, ldb) = (k * 4, k * 4);
        let abig = fill_pattern(m * lda, 31);
        let btbig = fill_pattern(n * ldb, 32);
        let off = k; // item 1 of 4 in the batched layout
        let mut a = Vec::new();
        let mut bt = Vec::new();
        for i in 0..m {
            a.extend_from_slice(&abig[i * lda + off..i * lda + off + k]);
        }
        for j in 0..n {
            bt.extend_from_slice(&btbig[j * ldb + off..j * ldb + off + k]);
        }
        let mut want = vec![0.1f32; m * n];
        gemm_nt_kseq(m, n, k, &a, k, &bt, k, &mut want, true);
        let mut got = vec![0.1f32; m * n];
        gemm_nt_kseq(m, n, k, &abig[off..], lda, &btbig[off..], ldb, &mut got, true);
        for (i, (g, w)) in got.iter().zip(&want).enumerate() {
            assert_eq!(g.to_bits(), w.to_bits(), "[{i}]");
        }
    }

    #[test]
    fn zero_k_clears_or_keeps() {
        let mut c = vec![1.0f32; 6];
        gemm_nn(2, 3, 0, &[], &[], &mut c, true);
        assert_eq!(c, vec![1.0; 6]);
        gemm_nn(2, 3, 0, &[], &[], &mut c, false);
        assert_eq!(c, vec![0.0; 6]);
    }
}
