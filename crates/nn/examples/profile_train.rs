//! Per-layer wall-time breakdown of one batched training step at the
//! medium-mode shapes — the measurement tool behind the Table-4
//! batching work. Run with:
//!
//! ```text
//! cargo run --release -p taor-nn --example profile_train
//! ```

use std::time::Instant;
use taor_nn::layers::softmax_cross_entropy_rows;
use taor_nn::{NetConfig, NormXCorrNet, PairSample, Tensor};

fn time<T>(label: &str, iters: usize, mut f: impl FnMut() -> T) -> f64 {
    // Warm-up.
    let _ = f();
    let started = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    let per = started.elapsed().as_secs_f64() / iters as f64;
    println!("{label:32} {:9.1} us/call", per * 1e6);
    per
}

fn main() {
    let cfg = NetConfig {
        height: 32,
        width: 24,
        c1: 8,
        c2: 10,
        c3: 10,
        dense: 32,
        ..NetConfig::default()
    };
    let net = NormXCorrNet::new(cfg).unwrap();
    let b = 4usize;
    let len = 3 * 32 * 24;
    let samples: Vec<PairSample> = (0..b)
        .map(|i| {
            let a: Vec<f32> = (0..len).map(|v| ((v + i * 97) as f32 * 0.013).sin() * 0.5).collect();
            let mut bb = a.clone();
            bb.rotate_left(29);
            PairSample {
                a: Tensor::from_vec(&[1, 3, 32, 24], a).unwrap(),
                b: Tensor::from_vec(&[1, 3, 32, 24], bb).unwrap(),
                label: i % 2,
            }
        })
        .collect();
    let mut a = Vec::new();
    let mut bb = Vec::new();
    for s in &samples {
        a.extend_from_slice(s.a.data());
        bb.extend_from_slice(s.b.data());
    }
    let a = Tensor::from_vec(&[b, 3, 32, 24], a).unwrap();
    let bt = Tensor::from_vec(&[b, 3, 32, 24], bb).unwrap();
    let labels: Vec<usize> = samples.iter().map(|s| s.label).collect();
    let seeds: Vec<u64> = (0..b as u64).collect();

    let iters = 200;
    let fwd =
        time("forward_batch (B=4)", iters, || net.forward_batch(&a, &bt, Some(&seeds)).unwrap());
    let (logits, cache) = net.forward_batch(&a, &bt, Some(&seeds)).unwrap();
    let (_, grad) = softmax_cross_entropy_rows(&logits, &labels).unwrap();
    let bwd = time("backward_batch (B=4)", iters, || {
        let mut g = net.zero_grads();
        net.backward_batch(&cache, &grad, &mut g).unwrap();
        g
    });
    let zg = time("zero_grads alone", iters, || net.zero_grads());
    println!(
        "step total {:.1} us => {:.0} pairs/s single-thread",
        (fwd + bwd) * 1e6,
        b as f64 / (fwd + bwd)
    );
    println!("zero_grads share of backward: {:.1}%", 100.0 * zg / bwd);

    // Per-layer slices at the same shapes (tower runs interleaved 2B).
    let item = 3 * 32 * 24;
    let mut inter = vec![0.0f32; 2 * b * item];
    for i in 0..b {
        inter[2 * i * item..(2 * i + 1) * item]
            .copy_from_slice(&a.data()[i * item..(i + 1) * item]);
        inter[(2 * i + 1) * item..(2 * i + 2) * item]
            .copy_from_slice(&bt.data()[i * item..(i + 1) * item]);
    }
    let t0 = Tensor::from_vec(&[2 * b, 3, 32, 24], inter).unwrap();
    let (y1, c1) = net.conv1.forward(&t0).unwrap();
    time("conv1.forward [8,3,32,24]", iters, || net.conv1.forward(&t0).unwrap());
    let g1 = Tensor::full(y1.shape(), 0.01);
    time("conv1.backward_grouped", iters, || {
        let mut g = net.conv1.zero_grads();
        net.conv1.backward_grouped(&c1, &g1, &mut g, 2).unwrap()
    });
    let (p1, _) = taor_nn::MaxPool2D::new(2, 2).forward(&y1).unwrap();
    let (r1, _) = taor_nn::layers::Relu.forward(&p1);
    let (y2, c2) = net.conv2.forward(&r1).unwrap();
    time("conv2.forward", iters, || net.conv2.forward(&r1).unwrap());
    let g2 = Tensor::full(y2.shape(), 0.01);
    time("conv2.backward_grouped", iters, || {
        let mut g = net.conv2.zero_grads();
        net.conv2.backward_grouped(&c2, &g2, &mut g, 2).unwrap()
    });
    let (p2, _) = taor_nn::MaxPool2D::new(2, 2).forward(&y2).unwrap();
    let (f, _) = taor_nn::layers::Relu.forward(&p2);
    // Split even/odd.
    let s = f.shape();
    let item = s[1] * s[2] * s[3];
    let mut fa = Vec::new();
    let mut fb = Vec::new();
    for i in 0..b {
        fa.extend_from_slice(&f.data()[2 * i * item..(2 * i + 1) * item]);
        fb.extend_from_slice(&f.data()[(2 * i + 1) * item..(2 * i + 2) * item]);
    }
    let fa = Tensor::from_vec(&[b, s[1], s[2], s[3]], fa).unwrap();
    let fb = Tensor::from_vec(&[b, s[1], s[2], s[3]], fb).unwrap();
    let xc = taor_nn::NormXCorr::new(3, 1);
    let (xo, xcache) = xc.forward(&fa, &fb).unwrap();
    time("xcorr.forward", iters, || xc.forward(&fa, &fb).unwrap());
    let gx = Tensor::full(xo.shape(), 0.01);
    time("xcorr.backward", iters, || xc.backward(&xcache, &gx).unwrap());
    let (y3, c3) = net.conv3.forward(&xo).unwrap();
    time("conv3.forward", iters, || net.conv3.forward(&xo).unwrap());
    let g3 = Tensor::full(y3.shape(), 0.01);
    time("conv3.backward_grouped", iters, || {
        let mut g = net.conv3.zero_grads();
        net.conv3.backward_grouped(&c3, &g3, &mut g, 1).unwrap()
    });
    let (y4, c4) = net.conv4.forward(&y3).unwrap();
    time("conv4.forward", iters, || net.conv4.forward(&y3).unwrap());
    let g4 = Tensor::full(y4.shape(), 0.01);
    time("conv4.backward_grouped", iters, || {
        let mut g = net.conv4.zero_grads();
        net.conv4.backward_grouped(&c4, &g4, &mut g, 1).unwrap()
    });

    // Raw GEMM shapes behind conv1 at 2B = 8 interleaved items.
    use taor_nn::gemm::{gemm_nn, gemm_nt, gemm_tn};
    let a1 = vec![0.3f32; 8 * 75];
    let b1 = vec![0.2f32; 75 * 4480];
    let mut c1buf = vec![0.0f32; 8 * 4480];
    time("gemm_nn 8x4480x75 (fwd)", iters, || gemm_nn(8, 4480, 75, &a1, &b1, &mut c1buf, false));
    let a2 = vec![0.3f32; 8 * 560];
    let b2 = vec![0.2f32; 75 * 560];
    let mut c2buf = vec![0.0f32; 8 * 75];
    time("gemm_nt 8x75x560 (dW item)", iters, || gemm_nt(8, 75, 560, &a2, &b2, &mut c2buf, true));
    let a3 = vec![0.3f32; 8 * 75];
    let b3 = vec![0.2f32; 8 * 4480];
    let mut c3buf = vec![0.0f32; 75 * 4480];
    time("gemm_tn 75x4480x8 (dcol)", iters, || gemm_tn(75, 4480, 8, &a3, &b3, &mut c3buf, false));
    let mut z = vec![0.0f32; 75 * 4480];
    time("zero 336k floats", iters, || {
        z.fill(0.0);
        std::hint::black_box(&z);
    });
}
