//! Error types for feature extraction and matching.

use std::fmt;

/// Errors produced by detectors, descriptors and matchers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FeatureError {
    /// Input image is too small for the detector's scale space.
    ImageTooSmall { width: u32, height: u32, min: u32 },
    /// Descriptor sets passed to a matcher have mismatched widths.
    DescriptorWidthMismatch { left: usize, right: usize },
    /// A parameter was out of range.
    InvalidParameter { name: &'static str, msg: String },
}

impl fmt::Display for FeatureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FeatureError::ImageTooSmall { width, height, min } => {
                write!(f, "image {width}x{height} smaller than detector minimum {min}")
            }
            FeatureError::DescriptorWidthMismatch { left, right } => {
                write!(f, "descriptor width mismatch: {left} vs {right}")
            }
            FeatureError::InvalidParameter { name, msg } => {
                write!(f, "invalid parameter `{name}`: {msg}")
            }
        }
    }
}

impl std::error::Error for FeatureError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, FeatureError>;
