// taor-lint: allow(panic::index) — dense evaluation kernel: row indices are bounded by the descriptor containers they came from.
//! Recall@k-vs-exact evaluation for the approximate indexes.
//!
//! The exact oracles reuse the PR 3 naive-matcher pattern — a scalar scan
//! maintaining the lexicographically smallest `(distance, index)` pairs —
//! generalised from 2-NN to top-k, and recall is **tie-tolerant**: an
//! approximate neighbour counts as a hit when its (exact, rescored)
//! distance is no worse than the oracle's kth distance, so duplicated
//! descriptors cannot flip a correct answer into a miss by index
//! disagreement alone.

use crate::keypoint::{hamming_words, l2_sq, BinaryDescriptors, FloatDescriptors};

/// Exact top-`k` neighbours of `query` in `train` under squared L2 as
/// `(row, distance)`, ascending by `(distance, index)`; non-finite
/// distances are quarantined (never returned), matching the naive
/// matcher's semantics.
pub fn exact_knn_float(query: &[f32], train: &FloatDescriptors, k: usize) -> Vec<(usize, f32)> {
    let mut all: Vec<(usize, f32)> = (0..train.len())
        .map(|i| (i, l2_sq(query, train.row(i))))
        .filter(|&(_, d)| d.is_finite())
        .collect();
    all.sort_unstable_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
    all.truncate(k);
    all
}

/// Exact top-`k` neighbours of a word-packed binary `query` in `train`
/// under Hamming distance as `(row, distance)`, ascending by
/// `(distance, index)`.
pub fn exact_knn_binary(query: &[u64], train: &BinaryDescriptors, k: usize) -> Vec<(usize, u32)> {
    let wpr = train.words_per_row();
    let packed = train.packed_words();
    let mut all: Vec<(usize, u32)> = (0..train.len())
        .map(|i| (i, hamming_words(query, &packed[i * wpr..(i + 1) * wpr])))
        .collect();
    all.sort_unstable_by(|a, b| a.1.cmp(&b.1).then(a.0.cmp(&b.0)));
    all.truncate(k);
    all
}

/// Tie-tolerant recall@k for one query: the fraction of the first `k`
/// approximate neighbours whose distance is `≤` the exact kth distance.
/// Returns 1.0 when the exact list is empty (nothing to recall).
pub fn recall_at_k(approx: &[(usize, f32)], exact: &[(usize, f32)], k: usize) -> f64 {
    let k = k.min(exact.len());
    if k == 0 {
        return 1.0;
    }
    let kth = exact[k - 1].1;
    let hits = approx.iter().take(k).filter(|&&(_, d)| d <= kth).count();
    hits as f64 / k as f64
}

/// [`recall_at_k`] over integer (Hamming) distances.
pub fn recall_at_k_u32(approx: &[(usize, u32)], exact: &[(usize, u32)], k: usize) -> f64 {
    let k = k.min(exact.len());
    if k == 0 {
        return 1.0;
    }
    let kth = exact[k - 1].1;
    let hits = approx.iter().take(k).filter(|&&(_, d)| d <= kth).count();
    hits as f64 / k as f64
}

/// Mean of per-query recalls; 1.0 for an empty batch.
pub fn mean_recall(per_query: &[f64]) -> f64 {
    if per_query.is_empty() {
        return 1.0;
    }
    per_query.iter().sum::<f64>() / per_query.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_float_oracle_sorts_and_quarantines() {
        let mut train = FloatDescriptors::new(1);
        train.push(&[3.0]);
        train.push(&[f32::NAN]);
        train.push(&[1.0]);
        train.push(&[1.0]);
        let nn = exact_knn_float(&[1.0], &train, 3);
        assert_eq!(nn, vec![(2, 0.0), (3, 0.0), (0, 4.0)]);
    }

    #[test]
    fn exact_binary_oracle_sorts_with_index_ties() {
        let mut train = BinaryDescriptors::new(1);
        train.push(&[0b11]);
        train.push(&[0b01]);
        train.push(&[0b01]);
        let nn = exact_knn_binary(&[0b01], &train, 2);
        assert_eq!(nn, vec![(1, 0), (2, 0)]);
    }

    #[test]
    fn recall_is_tie_tolerant() {
        let exact = vec![(1, 0.5f32), (2, 0.5)];
        // Different index, same distance: still a hit.
        let approx = vec![(7, 0.5f32), (2, 0.5)];
        assert_eq!(recall_at_k(&approx, &exact, 2), 1.0);
        // A worse distance is a miss.
        let approx = vec![(7, 0.6f32), (2, 0.5)];
        assert_eq!(recall_at_k(&approx, &exact, 2), 0.5);
        // Short approximate lists count the absent entries as misses.
        assert_eq!(recall_at_k(&[], &exact, 2), 0.0);
        // Empty exact list: vacuous hit.
        assert_eq!(recall_at_k(&approx, &[], 2), 1.0);
    }

    #[test]
    fn mean_recall_basics() {
        assert_eq!(mean_recall(&[]), 1.0);
        assert_eq!(mean_recall(&[1.0, 0.0]), 0.5);
    }
}
