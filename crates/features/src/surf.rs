// taor-lint: allow(panic::index) — dense numeric kernel: indices are derived from dimensions validated at the public boundary and bounded by the enclosing loops.
//! SURF: Speeded-Up Robust Features (Bay, Tuytelaars, Van Gool, ECCV 2006).
//!
//! "SURF was originally conceived for providing a more scalable
//! alternative to SIFT, performing convolutions through square-shaped
//! filters … the keypoints are identified through maximising the
//! determinant of the Hessian matrix for blob detection. … set the Hessian
//! filter threshold to 400" (paper §3.3).
//!
//! Box-filter second derivatives are evaluated on an integral image, the
//! determinant of the approximated Hessian is thresholded and non-maximum
//! suppressed across a 3×3×3 scale neighbourhood, orientation comes from
//! Haar-wavelet responses in a circular window, and the descriptor is the
//! classic 4×4 grid of (Σdx, Σdy, Σ|dx|, Σ|dy|) = 64 dimensions.

use crate::error::{FeatureError, Result};
use crate::keypoint::{FloatDescriptors, KeyPoint};
use taor_imgproc::image::GrayImage;
use taor_imgproc::integral::IntegralImage;

/// SURF parameters.
#[derive(Debug, Clone)]
pub struct SurfParams {
    /// Threshold on the Hessian determinant (OpenCV default 100; the paper
    /// sets 400).
    pub hessian_threshold: f64,
    /// Number of octaves in the box-filter pyramid.
    pub octaves: usize,
    /// Maximum keypoints retained (strongest first); 0 = unlimited.
    pub max_features: usize,
}

impl Default for SurfParams {
    fn default() -> Self {
        SurfParams { hessian_threshold: 400.0, octaves: 3, max_features: 500 }
    }
}

/// Box-filter approximations of the second-order Gaussian derivatives at
/// filter size `s` (s = 9, 15, 21, … per Bay et al.), evaluated at `(x, y)`.
/// Returns `(dxx, dyy, dxy)` normalised by the filter area.
fn hessian_boxes(ii: &IntegralImage, x: i64, y: i64, s: i64) -> (f64, f64, f64) {
    let l = s / 3; // lobe size
    let norm = 1.0 / (s * s) as f64;

    // Dyy: three stacked horizontal lobes (white, black(x2 weight), white)
    let w = 2 * l - 1;
    let dyy = ii.box_sum(x - w / 2, y - l - l / 2, w, l)
        - 2.0 * ii.box_sum(x - w / 2, y - l / 2, w, l)
        + ii.box_sum(x - w / 2, y + l - l / 2, w, l);

    // Dxx: transpose of Dyy.
    let dxx = ii.box_sum(x - l - l / 2, y - w / 2, l, w)
        - 2.0 * ii.box_sum(x - l / 2, y - w / 2, l, w)
        + ii.box_sum(x + l - l / 2, y - w / 2, l, w);

    // Dxy: four diagonal lobes.
    let dxy = ii.box_sum(x - l, y - l, l, l) + ii.box_sum(x + 1, y + 1, l, l)
        - ii.box_sum(x + 1, y - l, l, l)
        - ii.box_sum(x - l, y + 1, l, l);

    (dxx * norm, dyy * norm, dxy * norm)
}

/// Hessian determinant with Bay's 0.9 weight on the Dxy term.
fn det_hessian(ii: &IntegralImage, x: i64, y: i64, s: i64) -> f64 {
    let (dxx, dyy, dxy) = hessian_boxes(ii, x, y, s);
    dxx * dyy - (0.9 * dxy) * (0.9 * dxy)
}

/// Haar wavelet responses (dx, dy) of size `2r x 2r` at `(x, y)`.
fn haar(ii: &IntegralImage, x: i64, y: i64, r: i64) -> (f64, f64) {
    let dx = ii.box_sum(x, y - r, r, 2 * r) - ii.box_sum(x - r, y - r, r, 2 * r);
    let dy = ii.box_sum(x - r, y, 2 * r, r) - ii.box_sum(x - r, y - r, 2 * r, r);
    (dx, dy)
}

/// Dominant orientation: largest sum of Haar responses inside a sliding
/// π/3 window over a circle of radius 6σ (Bay et al. §3.3).
fn dominant_orientation(ii: &IntegralImage, x: i64, y: i64, scale: f64) -> f32 {
    let sigma = scale.max(1.0);
    let r_hw = (2.0 * sigma).round() as i64;
    let mut samples: Vec<(f64, f64, f64)> = Vec::new(); // (angle, dx, dy)
    for dy in -6..=6i64 {
        for dx in -6..=6i64 {
            if dx * dx + dy * dy > 36 {
                continue;
            }
            let px = x + (dx as f64 * sigma).round() as i64;
            let py = y + (dy as f64 * sigma).round() as i64;
            let (hx, hy) = haar(ii, px, py, r_hw.max(1));
            // Gaussian weight (σ = 2.5 in grid units).
            let wgt = (-((dx * dx + dy * dy) as f64) / (2.0 * 2.5 * 2.5)).exp();
            let wx = hx * wgt;
            let wy = hy * wgt;
            // taor-lint: allow(float::eq) — exact zero-weight guard before atan2; any tolerance would drop real gradients
            if wx != 0.0 || wy != 0.0 {
                samples.push((wy.atan2(wx), wx, wy));
            }
        }
    }
    if samples.is_empty() {
        return 0.0;
    }
    let window = std::f64::consts::FRAC_PI_3;
    let mut best = (0.0f64, 0.0f64);
    let mut best_norm = -1.0;
    for &(a0, _, _) in &samples {
        let (mut sx, mut sy) = (0.0, 0.0);
        for &(a, dx, dy) in &samples {
            let mut diff = a - a0;
            while diff > std::f64::consts::PI {
                diff -= 2.0 * std::f64::consts::PI;
            }
            while diff < -std::f64::consts::PI {
                diff += 2.0 * std::f64::consts::PI;
            }
            if diff >= 0.0 && diff < window {
                sx += dx;
                sy += dy;
            }
        }
        let n = sx * sx + sy * sy;
        if n > best_norm {
            best_norm = n;
            best = (sx, sy);
        }
    }
    let a = best.1.atan2(best.0) as f32;
    if a < 0.0 {
        a + 2.0 * std::f32::consts::PI
    } else {
        a
    }
}

/// 64-d SURF descriptor: 4×4 subregions × (Σdx, Σdy, Σ|dx|, Σ|dy|), sampled
/// on a 20σ window rotated to the keypoint orientation, L2-normalised.
fn descriptor(ii: &IntegralImage, kp: &KeyPoint) -> [f32; 64] {
    let sigma = (kp.size as f64 / 9.0 * 1.2).max(1.0);
    let (sin_t, cos_t) = (kp.angle as f64).sin_cos();
    let mut desc = [0.0f32; 64];
    let step = sigma; // sample spacing
    let r_hw = sigma.round().max(1.0) as i64;
    for sub_y in 0..4 {
        for sub_x in 0..4 {
            let base = (sub_y * 4 + sub_x) * 4;
            // 5x5 samples per subregion (Bay et al.).
            for sy in 0..5 {
                for sx in 0..5 {
                    // Offsets in the rotated frame, centred on the keypoint.
                    let u = ((sub_x as f64 - 2.0) * 5.0 + sx as f64 + 0.5) * step;
                    let v = ((sub_y as f64 - 2.0) * 5.0 + sy as f64 + 0.5) * step;
                    let px = kp.x as f64 + u * cos_t - v * sin_t;
                    let py = kp.y as f64 + u * sin_t + v * cos_t;
                    let (hx, hy) = haar(ii, px.round() as i64, py.round() as i64, r_hw);
                    // Rotate responses into the keypoint frame.
                    let dx = hx * cos_t + hy * sin_t;
                    let dy = -hx * sin_t + hy * cos_t;
                    desc[base] += dx as f32;
                    desc[base + 1] += dy as f32;
                    desc[base + 2] += dx.abs() as f32;
                    desc[base + 3] += dy.abs() as f32;
                }
            }
        }
    }
    let norm: f32 = desc.iter().map(|v| v * v).sum::<f32>().sqrt();
    if norm > 1e-12 {
        for v in &mut desc {
            *v /= norm;
        }
    }
    desc
}

/// Detect SURF keypoints and compute 64-d descriptors.
pub fn surf_detect_and_compute(
    img: &GrayImage,
    params: &SurfParams,
) -> Result<(Vec<KeyPoint>, FloatDescriptors)> {
    const MIN_SIDE: u32 = 48;
    if img.width() < MIN_SIDE || img.height() < MIN_SIDE {
        return Err(FeatureError::ImageTooSmall {
            width: img.width(),
            height: img.height(),
            min: MIN_SIDE,
        });
    }
    if params.octaves == 0 || params.octaves > 5 {
        return Err(FeatureError::InvalidParameter {
            name: "octaves",
            msg: format!("{} not in 1..=5", params.octaves),
        });
    }
    let ii = IntegralImage::from_gray(img);
    let (w, h) = (img.width() as i64, img.height() as i64);

    // Filter sizes per octave: {9,15,21,27}, {15,27,39,51}, {27,51,75,99}…
    let mut keypoints: Vec<KeyPoint> = Vec::new();
    for octave in 0..params.octaves {
        let step = 1i64 << octave; // sampling stride
                                   // Filter sizes: size_k = 3 · (2^(octave+1) · (k+1) + 1), giving
                                   // {9, 15, 21, 27} at octave 0, {15, 27, 39, 51} at octave 1, …
        let sizes: Vec<i64> = (0..4).map(|k| 3 * ((1i64 << (octave + 1)) * (k + 1) + 1)).collect();

        // Response maps for the 4 scales of this octave.
        let gw = (w / step) as usize;
        let gh = (h / step) as usize;
        let mut maps: Vec<Vec<f64>> = Vec::with_capacity(4);
        for &s in &sizes {
            let margin = s / 2 + 1;
            let mut map = vec![f64::NEG_INFINITY; gw * gh];
            for gy in 0..gh as i64 {
                let y = gy * step;
                if y < margin || y >= h - margin {
                    continue;
                }
                for gx in 0..gw as i64 {
                    let x = gx * step;
                    if x < margin || x >= w - margin {
                        continue;
                    }
                    map[(gy as usize) * gw + gx as usize] = det_hessian(&ii, x, y, s);
                }
            }
            maps.push(map);
        }

        // 3x3x3 non-maximum suppression over the two interior scales.
        for k in 1..3usize {
            for gy in 1..gh.saturating_sub(1) {
                for gx in 1..gw.saturating_sub(1) {
                    let v = maps[k][gy * gw + gx];
                    if !v.is_finite() || v < params.hessian_threshold {
                        continue;
                    }
                    let mut is_max = true;
                    'sup: for dk in 0..3usize {
                        for dy in 0..3usize {
                            for dx in 0..3usize {
                                if (dk, dy, dx) == (1, 1, 1) {
                                    continue;
                                }
                                let n = maps[k + dk - 1][(gy + dy - 1) * gw + (gx + dx - 1)];
                                if n.is_finite() && n >= v {
                                    is_max = false;
                                    break 'sup;
                                }
                            }
                        }
                    }
                    if !is_max {
                        continue;
                    }
                    let x = (gx as i64 * step) as f32;
                    let y = (gy as i64 * step) as f32;
                    let size = sizes[k] as f32;
                    keypoints.push(KeyPoint {
                        x,
                        y,
                        size,
                        angle: 0.0,
                        response: v as f32,
                        octave: octave as i32,
                    });
                }
            }
        }
    }

    keypoints.sort_by(|a, b| taor_imgproc::cmp::nan_last_desc_f32(a.response, b.response));
    if params.max_features > 0 {
        keypoints.truncate(params.max_features);
    }

    let mut descriptors = FloatDescriptors::new(64);
    for kp in &mut keypoints {
        let scale = kp.size as f64 / 9.0 * 1.2;
        kp.angle = dominant_orientation(&ii, kp.x as i64, kp.y as i64, scale);
        descriptors.push(&descriptor(&ii, kp));
    }
    Ok((keypoints, descriptors))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Blob test image: bright discs on dark ground.
    fn blob_image() -> GrayImage {
        use taor_imgproc::draw::Canvas;
        let mut c = Canvas::new(128, 128, [15, 15, 15]);
        c.fill_ellipse(40.0, 40.0, 9.0, 9.0, [240, 240, 240]);
        c.fill_ellipse(90.0, 70.0, 14.0, 14.0, [220, 220, 220]);
        c.fill_ellipse(50.0, 100.0, 6.0, 6.0, [250, 250, 250]);
        taor_imgproc::color::rgb_to_gray(c.image())
    }

    #[test]
    fn detects_blobs() {
        let img = blob_image();
        let (kps, descs) = surf_detect_and_compute(&img, &SurfParams::default()).unwrap();
        assert!(!kps.is_empty(), "expected blob detections");
        assert_eq!(kps.len(), descs.len());
        assert_eq!(descs.width(), 64);
        // At least one detection near each disc centre.
        for &(cx, cy) in &[(40.0f32, 40.0f32), (90.0, 70.0)] {
            let close = kps.iter().any(|k| ((k.x - cx).powi(2) + (k.y - cy).powi(2)).sqrt() < 12.0);
            assert!(close, "no keypoint near ({cx},{cy}): {kps:?}");
        }
    }

    #[test]
    fn descriptors_are_unit_norm() {
        let img = blob_image();
        let (_, descs) = surf_detect_and_compute(&img, &SurfParams::default()).unwrap();
        for d in descs.iter() {
            let n: f32 = d.iter().map(|v| v * v).sum::<f32>().sqrt();
            assert!((n - 1.0).abs() < 1e-4, "norm {n}");
        }
    }

    #[test]
    fn flat_image_yields_nothing() {
        let img = GrayImage::filled(96, 96, [100]);
        let (kps, _) = surf_detect_and_compute(&img, &SurfParams::default()).unwrap();
        assert!(kps.is_empty());
    }

    #[test]
    fn threshold_prunes_detections() {
        let img = blob_image();
        let lo = SurfParams { hessian_threshold: 10.0, ..Default::default() };
        let hi = SurfParams { hessian_threshold: 5000.0, ..Default::default() };
        let (k_lo, _) = surf_detect_and_compute(&img, &lo).unwrap();
        let (k_hi, _) = surf_detect_and_compute(&img, &hi).unwrap();
        assert!(k_lo.len() >= k_hi.len());
    }

    #[test]
    fn small_image_rejected() {
        let img = GrayImage::new(20, 20);
        assert!(matches!(
            surf_detect_and_compute(&img, &SurfParams::default()),
            Err(FeatureError::ImageTooSmall { .. })
        ));
    }

    #[test]
    fn invalid_octaves_rejected() {
        let img = blob_image();
        let p = SurfParams { octaves: 0, ..Default::default() };
        assert!(surf_detect_and_compute(&img, &p).is_err());
        let p = SurfParams { octaves: 9, ..Default::default() };
        assert!(surf_detect_and_compute(&img, &p).is_err());
    }

    #[test]
    fn deterministic() {
        let img = blob_image();
        let (k1, d1) = surf_detect_and_compute(&img, &SurfParams::default()).unwrap();
        let (k2, d2) = surf_detect_and_compute(&img, &SurfParams::default()).unwrap();
        assert_eq!(k1.len(), k2.len());
        assert_eq!(d1, d2);
    }
}
