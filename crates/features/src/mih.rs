// taor-lint: allow(panic::index) — dense hashing kernel: bucket offsets and row ids are produced in-bounds at build time and bounded by the arrays they index.
//! Multi-index hashing for binary descriptors (Norouzi, Punjani & Fleet,
//! "Fast Search in Hamming Space with Multi-Index Hashing", CVPR 2012).
//!
//! The code is split into `m` disjoint substrings of `b` bits, each
//! indexed in its own table. A query probes every table at growing
//! Hamming radius `r`; by the pigeonhole principle any code within full
//! distance `m·(r+1) − 1` of the query differs from it by at most `r`
//! bits in *some* substring, so once the radius-`r` sweep finishes, every
//! unseen code is at distance `≥ m·(r+1)`. The search stops as soon as
//! that bound exceeds the current second-best — which makes MIH an
//! **exact** kNN algorithm: results are bit-identical to
//! [`knn_match_binary_naive`], just reached sub-linearly.
//!
//! Candidate verification rides the cached `u64` packings of
//! [`BinaryDescriptors::packed_words`] with a popcount kernel and an
//! early-abandon bound one past the current second-best (a bound hit
//! cannot displace either slot, so the unfinished count is safe to
//! discard).
//!
//! **Determinism.** Buckets are sorted `(key, row)` arrays probed by
//! binary search — no hash-map iteration anywhere — and the lexicographic
//! `(distance, index)` order maintained during verification is exactly
//! the order the naive ascending scan produces, so results are identical
//! across `TAOR_THREADS` widths and repeated spawns.
//!
//! [`knn_match_binary_naive`]: crate::matcher::knn_match_binary_naive

use rayon::prelude::*;

use crate::error::{FeatureError, Result};
use crate::keypoint::{hamming_words_bounded, BinaryDescriptors};
use crate::matcher::{DMatch, RatioMatch};

/// MIH build knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MihParams {
    /// Bits per substring (1..=32). 16 splits ORB's 256 bits into 16
    /// tables of 65,536 buckets — the paper's recommended `b ≈ log₂ n`
    /// regime for galleries in the 10⁴–10⁵ range. Results are exact at
    /// any width, but beware going much wider: the radius-`r` sweep
    /// enumerates `C(substring_bits, r)` keys per table, so wide
    /// substrings paired with distant queries degrade towards
    /// exhaustive key enumeration rather than a bucket scan.
    pub substring_bits: u32,
}

impl Default for MihParams {
    fn default() -> Self {
        MihParams { substring_bits: 16 }
    }
}

/// One substring table: parallel `(key, row)` arrays sorted
/// lexicographically, probed via `partition_point`.
#[derive(Debug)]
struct Table {
    bit_lo: u32,
    bit_len: u32,
    keys: Vec<u32>,
    rows: Vec<u32>,
}

impl Table {
    /// Iterate the rows bucketed under `key`.
    fn bucket(&self, key: u32) -> &[u32] {
        let lo = self.keys.partition_point(|&k| k < key);
        let hi = lo + self.keys[lo..].partition_point(|&k| k == key);
        &self.rows[lo..hi]
    }
}

/// Extract `len ≤ 32` bits starting at bit `lo` from a little-endian
/// word-packed row (bit `j` of the code is bit `j % 64` of word `j / 64`,
/// matching [`BinaryDescriptors::packed_words`]).
fn substring(words: &[u64], lo: u32, len: u32) -> u32 {
    let w = (lo / 64) as usize;
    let off = lo % 64;
    let mut v = words[w] >> off;
    if off + len > 64 && w + 1 < words.len() {
        // len ≤ 32 ⇒ off > 32 here, so the shift below is < 64.
        v |= words[w + 1] << (64 - off);
    }
    (v & ((1u64 << len) - 1)) as u32
}

/// Visit every `len`-bit key at Hamming distance exactly `r` from `key`,
/// in deterministic ascending-bit-position order.
fn for_each_flip(key: u32, len: u32, r: u32, start: u32, f: &mut impl FnMut(u32)) {
    if r == 0 {
        f(key);
        return;
    }
    for p in start..=(len - r) {
        for_each_flip(key ^ (1 << p), len, r - 1, p + 1, f);
    }
}

/// An owned multi-index-hashing index over a binary descriptor matrix.
#[derive(Debug)]
pub struct MihIndex {
    descs: BinaryDescriptors,
    params: MihParams,
    tables: Vec<Table>,
}

impl MihIndex {
    /// Build an index owning `descs`.
    pub fn build(descs: BinaryDescriptors, params: MihParams) -> Result<Self> {
        if params.substring_bits == 0 || params.substring_bits > 32 {
            return Err(FeatureError::InvalidParameter {
                name: "substring_bits",
                msg: "must be in 1..=32".into(),
            });
        }
        let bits_total = (descs.width_bytes() * 8) as u32;
        let b = params.substring_bits;
        let wpr = descs.words_per_row();
        let packed = descs.packed_words();
        let n = descs.len();
        let mut tables = Vec::new();
        let mut lo = 0u32;
        while lo < bits_total {
            let len = b.min(bits_total - lo);
            let mut entries: Vec<(u32, u32)> = (0..n)
                .map(|i| (substring(&packed[i * wpr..(i + 1) * wpr], lo, len), i as u32))
                .collect();
            entries.sort_unstable();
            tables.push(Table {
                bit_lo: lo,
                bit_len: len,
                keys: entries.iter().map(|e| e.0).collect(),
                rows: entries.iter().map(|e| e.1).collect(),
            });
            lo += len;
        }
        Ok(MihIndex { descs, params, tables })
    }

    /// Number of indexed rows.
    pub fn len(&self) -> usize {
        self.descs.len()
    }

    /// Whether the underlying matrix is empty.
    pub fn is_empty(&self) -> bool {
        self.descs.is_empty()
    }

    /// Descriptor width in bytes.
    pub fn width_bytes(&self) -> usize {
        self.descs.width_bytes()
    }

    /// The build knobs.
    pub fn params(&self) -> MihParams {
        self.params
    }

    /// Borrow the indexed descriptors.
    pub fn descriptors(&self) -> &BinaryDescriptors {
        &self.descs
    }

    /// Exact `k` nearest neighbours of a word-packed query as
    /// `(row index, Hamming distance)`, sorted ascending by
    /// `(distance, index)`.
    pub fn search_words(&self, qwords: &[u64], k: usize) -> Vec<(usize, u32)> {
        let n = self.descs.len();
        if n == 0 || k == 0 {
            return Vec::new();
        }
        let m = self.tables.len() as u32;
        let wpr = self.descs.words_per_row();
        let packed = self.descs.packed_words();
        let mut checked = vec![0u64; n.div_ceil(64)];
        let mut seen = 0usize;
        // Lexicographic (distance, row) top-k, kept sorted; k is 2 for the
        // matcher and a small shortlist for serving, so insertion is cheap.
        let mut top: Vec<(u32, u32)> = Vec::with_capacity(k + 1);
        let qkeys: Vec<u32> =
            self.tables.iter().map(|t| substring(qwords, t.bit_lo, t.bit_len)).collect();
        let max_len = self.tables.iter().map(|t| t.bit_len).max().unwrap_or(0);
        for r in 0..=max_len {
            for (t, &qkey) in self.tables.iter().zip(&qkeys) {
                if r > t.bit_len {
                    continue;
                }
                for_each_flip(qkey, t.bit_len, r, 0, &mut |key| {
                    for &row in t.bucket(key) {
                        let word = row as usize / 64;
                        let bit = 1u64 << (row as usize % 64);
                        if checked[word] & bit != 0 {
                            continue;
                        }
                        checked[word] |= bit;
                        seen += 1;
                        // One past the current worst kept distance: a
                        // candidate abandoned at the bound cannot enter.
                        let bound = match top.last() {
                            Some(&(d, _)) if top.len() >= k => d + 1,
                            _ => u32::MAX,
                        };
                        let d = hamming_words_bounded(
                            qwords,
                            &packed[row as usize * wpr..(row as usize + 1) * wpr],
                            bound,
                        );
                        let cand = (d, row);
                        if top.len() < k || cand < top[k - 1] {
                            let at = top.partition_point(|&t| t < cand);
                            top.insert(at, cand);
                            top.truncate(k);
                        }
                    }
                });
            }
            // Pigeonhole: every unseen row is at distance ≥ m·(r+1); once
            // the kth kept distance is strictly below that, no unseen row
            // can lexicographically displace anything.
            if seen >= n {
                break;
            }
            if top.len() >= k.min(n) {
                if let Some(&(d, _)) = top.last() {
                    if d < m * (r + 1) {
                        break;
                    }
                }
            }
        }
        top.iter().map(|&(d, row)| (row as usize, d)).collect()
    }

    /// [`MihIndex::search_words`] over an unpacked byte row.
    pub fn search(&self, row: &[u8], k: usize) -> Vec<(usize, u32)> {
        let mut words = vec![0u64; row.len().div_ceil(8)];
        for (w, chunk) in words.iter_mut().zip(row.chunks(8)) {
            let mut bytes = [0u8; 8];
            bytes[..chunk.len()].copy_from_slice(chunk);
            *w = u64::from_le_bytes(bytes);
        }
        self.search_words(&words, k)
    }

    /// 2-NN match every query row against the index, mirroring
    /// [`crate::matcher::knn_match_binary`]'s output shape. Exact: output
    /// is bit-identical to [`crate::matcher::knn_match_binary_naive`].
    /// Queries run in parallel with an ordered collect.
    pub fn knn_match(&self, query: &BinaryDescriptors) -> Result<Vec<RatioMatch>> {
        if query.is_empty() || self.descs.is_empty() {
            return Ok(Vec::new());
        }
        if query.width_bytes() != self.descs.width_bytes() {
            return Err(FeatureError::DescriptorWidthMismatch {
                left: query.width_bytes(),
                right: self.descs.width_bytes(),
            });
        }
        let wpr = query.words_per_row();
        let qw = query.packed_words();
        Ok((0..query.len())
            .into_par_iter()
            .map(|qi| {
                let top = self.search_words(&qw[qi * wpr..(qi + 1) * wpr], 2);
                // Hamming distances are always finite, so for n ≥ 1 the
                // lexicographic top-2 coincide with the oracle's
                // ascending-scan (best, second) pair.
                let best = match top.first() {
                    Some(&(ti, d)) => DMatch { query_idx: qi, train_idx: ti, distance: d as f32 },
                    None => DMatch { query_idx: qi, train_idx: 0, distance: f32::INFINITY },
                };
                let second = top.get(1).map(|&(ti, d)| DMatch {
                    query_idx: qi,
                    train_idx: ti,
                    distance: d as f32,
                });
                RatioMatch { best, second }
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matcher::knn_match_binary_naive;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn random_bdescs(n: usize, wb: usize, seed: u64) -> BinaryDescriptors {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut d = BinaryDescriptors::new(wb);
        let mut row = vec![0u8; wb];
        for _ in 0..n {
            for b in &mut row {
                *b = rng.gen();
            }
            d.push(&row);
        }
        d
    }

    #[test]
    fn substring_extraction_crosses_word_boundaries() {
        // Bits 0..64 set in word 0; word 1 all zeros except bit 64 (bit 0
        // of word 1).
        let words = [u64::MAX, 1u64];
        assert_eq!(substring(&words, 0, 16), 0xFFFF);
        assert_eq!(substring(&words, 60, 8), 0b0001_1111);
        assert_eq!(substring(&words, 62, 4), 0b0111);
    }

    #[test]
    fn exact_equivalence_with_naive_oracle() {
        let train = random_bdescs(300, 32, 1);
        let query = random_bdescs(40, 32, 2);
        let index = MihIndex::build(train.clone(), MihParams::default()).unwrap();
        let got = index.knn_match(&query).unwrap();
        let want = knn_match_binary_naive(&query, &train).unwrap();
        assert_eq!(got, want);
    }

    #[test]
    fn exact_equivalence_on_clustered_codes() {
        // Near-duplicate clusters: the regime where MIH actually stops at
        // tiny radii.
        let mut rng = SmallRng::seed_from_u64(3);
        let mut train = BinaryDescriptors::new(32);
        let mut centers = Vec::new();
        for _ in 0..20 {
            let mut c = [0u8; 32];
            for b in &mut c {
                *b = rng.gen();
            }
            centers.push(c);
        }
        for _ in 0..400 {
            let mut row = centers[rng.gen_range(0..centers.len())];
            for _ in 0..rng.gen_range(0..4) {
                let bit = rng.gen_range(0..256);
                row[bit / 8] ^= 1 << (bit % 8);
            }
            train.push(&row);
        }
        let mut query = BinaryDescriptors::new(32);
        for _ in 0..50 {
            let mut row = centers[rng.gen_range(0..centers.len())];
            let bit = rng.gen_range(0..256);
            row[bit / 8] ^= 1 << (bit % 8);
            query.push(&row);
        }
        let index = MihIndex::build(train.clone(), MihParams::default()).unwrap();
        assert_eq!(
            index.knn_match(&query).unwrap(),
            knn_match_binary_naive(&query, &train).unwrap()
        );
    }

    #[test]
    fn tie_behaviour_matches_oracle() {
        // Duplicated rows force distance ties; the oracle keeps the
        // earliest index.
        let mut train = BinaryDescriptors::new(2);
        for _ in 0..5 {
            train.push(&[0xAB, 0xCD]);
        }
        train.push(&[0xAB, 0xCC]);
        let mut query = BinaryDescriptors::new(2);
        query.push(&[0xAB, 0xCD]);
        let index = MihIndex::build(train.clone(), MihParams::default()).unwrap();
        let got = index.knn_match(&query).unwrap();
        let want = knn_match_binary_naive(&query, &train).unwrap();
        assert_eq!(got, want);
        assert_eq!(got[0].best.train_idx, 0);
        assert_eq!(got[0].second.map(|s| s.train_idx), Some(1));
    }

    #[test]
    fn single_row_gallery_has_no_second() {
        let train = random_bdescs(1, 32, 5);
        let query = random_bdescs(3, 32, 6);
        let index = MihIndex::build(train.clone(), MihParams::default()).unwrap();
        let got = index.knn_match(&query).unwrap();
        assert_eq!(got, knn_match_binary_naive(&query, &train).unwrap());
        assert!(got.iter().all(|m| m.second.is_none()));
    }

    #[test]
    fn odd_widths_and_substring_sizes() {
        // 7-byte rows (56 bits) with b = 12: last substring is 8 bits.
        for wb in [1usize, 3, 7, 20] {
            let train = random_bdescs(60, wb, 7 + wb as u64);
            let query = random_bdescs(15, wb, 8 + wb as u64);
            let index = MihIndex::build(train.clone(), MihParams { substring_bits: 12 }).unwrap();
            assert_eq!(
                index.knn_match(&query).unwrap(),
                knn_match_binary_naive(&query, &train).unwrap(),
                "width_bytes={wb}"
            );
        }
    }

    #[test]
    fn search_k_is_exact_topk() {
        let train = random_bdescs(200, 32, 9);
        let query = random_bdescs(1, 32, 10);
        let index = MihIndex::build(train.clone(), MihParams::default()).unwrap();
        let got = index.search(query.row(0), 10);
        // Brute-force oracle.
        let mut all: Vec<(u32, usize)> = (0..train.len())
            .map(|i| (crate::keypoint::hamming(query.row(0), train.row(i)), i))
            .collect();
        all.sort_unstable_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));
        let want: Vec<(usize, u32)> = all.iter().take(10).map(|&(d, i)| (i, d)).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn empty_inputs_and_width_mismatch() {
        let empty = BinaryDescriptors::new(32);
        let index = MihIndex::build(empty, MihParams::default()).unwrap();
        assert!(index.knn_match(&random_bdescs(2, 32, 1)).unwrap().is_empty());
        assert!(index.search(&[0u8; 32], 2).is_empty());
        let index = MihIndex::build(random_bdescs(5, 32, 2), MihParams::default()).unwrap();
        assert!(index.knn_match(&BinaryDescriptors::new(32)).unwrap().is_empty());
        assert!(index.knn_match(&random_bdescs(2, 16, 3)).is_err());
        assert!(MihIndex::build(random_bdescs(2, 32, 4), MihParams { substring_bits: 0 }).is_err());
        assert!(MihIndex::build(random_bdescs(2, 32, 4), MihParams { substring_bits: 33 }).is_err());
    }
}
