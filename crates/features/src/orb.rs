// taor-lint: allow(panic::index) — dense numeric kernel: indices are derived from dimensions validated at the public boundary and bounded by the enclosing loops.
//! ORB: Oriented FAST and Rotated BRIEF (Rublee et al., ICCV 2011).
//!
//! "ORB combines FAST for corner-based keypoint detection [27] with
//! improved feature descriptors derived from BRIEF [7], to accommodate for
//! rotation invariance. Since in BRIEF descriptors are parsed to binary
//! strings to reduce their dimensionality, we used the Hamming distance
//! instead of the L2 norm" (paper §3.3).
//!
//! The implementation follows the ICCV paper: FAST-9 segment-test corners
//! with non-maximum suppression, Harris response ranking, orientation by
//! the intensity centroid of a circular patch, and a 256-pair BRIEF test
//! pattern steered by the orientation. The test pattern is drawn from an
//! isotropic Gaussian (σ = patch/5) with a fixed seed, matching the
//! distribution Calonder et al. recommend.

use crate::error::{FeatureError, Result};
use crate::keypoint::{BinaryDescriptors, KeyPoint};
use rand::{Rng, SeedableRng};
use taor_imgproc::filter::gaussian_blur;
use taor_imgproc::image::{GrayF32, GrayImage};

/// ORB parameters.
#[derive(Debug, Clone)]
pub struct OrbParams {
    /// Maximum keypoints retained (strongest Harris responses first).
    pub max_features: usize,
    /// FAST segment-test threshold on absolute intensity difference.
    pub fast_threshold: u8,
    /// Patch side used for orientation and BRIEF tests.
    pub patch_size: u32,
    /// Seed for the BRIEF test-pattern (fixed so descriptors are
    /// comparable across runs and processes).
    pub pattern_seed: u64,
}

impl Default for OrbParams {
    fn default() -> Self {
        OrbParams {
            max_features: 500,
            fast_threshold: 20,
            patch_size: 31,
            pattern_seed: 0x2011_0b1f,
        }
    }
}

/// Bresenham circle of radius 3 used by the FAST segment test.
const FAST_CIRCLE: [(i32, i32); 16] = [
    (0, -3),
    (1, -3),
    (2, -2),
    (3, -1),
    (3, 0),
    (3, 1),
    (2, 2),
    (1, 3),
    (0, 3),
    (-1, 3),
    (-2, 2),
    (-3, 1),
    (-3, 0),
    (-3, -1),
    (-2, -2),
    (-1, -3),
];

/// FAST-9: is there an arc of ≥ 9 contiguous circle pixels all brighter
/// than `p + t` or all darker than `p − t`? Returns the corner "score"
/// (sum of absolute differences over the arc) or `None`.
fn fast_score(img: &GrayImage, x: u32, y: u32, t: i16) -> Option<f32> {
    let p = img.get(x, y) as i16;
    let mut states = [0i8; 32];
    for (i, &(dx, dy)) in FAST_CIRCLE.iter().enumerate() {
        let v = img.get((x as i32 + dx) as u32, (y as i32 + dy) as u32) as i16;
        let s = if v >= p + t {
            1
        } else if v <= p - t {
            -1
        } else {
            0
        };
        states[i] = s;
        states[i + 16] = s; // duplicated to handle wraparound runs
    }
    // Longest run of identical non-zero state.
    let mut best_len = 0;
    let mut run = 0;
    let mut run_state = 0i8;
    for &s in &states {
        if s != 0 && s == run_state {
            run += 1;
        } else {
            run_state = s;
            run = if s != 0 { 1 } else { 0 };
        }
        best_len = best_len.max(if s != 0 { run } else { 0 });
    }
    if best_len < 9 {
        return None;
    }
    // Score: sum of |v - p| over circle pixels exceeding the threshold.
    let mut score = 0.0f32;
    for &(dx, dy) in &FAST_CIRCLE {
        let v = img.get((x as i32 + dx) as u32, (y as i32 + dy) as u32) as i16;
        let d = (v - p).abs();
        if d > t {
            score += d as f32;
        }
    }
    Some(score)
}

/// Harris corner response at `(x, y)` over a small window (used to rank
/// FAST corners, per the ORB paper: FAST "has large responses along
/// edges", Harris filters those out).
fn harris_response(img: &GrayF32, x: u32, y: u32, block: i64) -> f32 {
    let (mut sxx, mut syy, mut sxy) = (0.0f32, 0.0, 0.0);
    let xi = x as i64;
    let yi = y as i64;
    for dy in -block..=block {
        for dx in -block..=block {
            let gx = (img.get_clamped(xi + dx + 1, yi + dy)
                - img.get_clamped(xi + dx - 1, yi + dy))
                * 0.5;
            let gy = (img.get_clamped(xi + dx, yi + dy + 1)
                - img.get_clamped(xi + dx, yi + dy - 1))
                * 0.5;
            sxx += gx * gx;
            syy += gy * gy;
            sxy += gx * gy;
        }
    }
    let det = sxx * syy - sxy * sxy;
    let trace = sxx + syy;
    det - 0.04 * trace * trace
}

/// Orientation by intensity centroid (Rosin): θ = atan2(m01, m10) over a
/// circular patch of radius `r`.
fn intensity_centroid_angle(img: &GrayImage, x: u32, y: u32, r: i64) -> f32 {
    let (mut m10, mut m01) = (0.0f64, 0.0f64);
    let xi = x as i64;
    let yi = y as i64;
    for dy in -r..=r {
        for dx in -r..=r {
            if dx * dx + dy * dy > r * r {
                continue;
            }
            let v = img.get_clamped(xi + dx, yi + dy) as f64;
            m10 += dx as f64 * v;
            m01 += dy as f64 * v;
        }
    }
    let a = (m01).atan2(m10) as f32;
    if a < 0.0 {
        a + 2.0 * std::f32::consts::PI
    } else {
        a
    }
}

/// Generate the 256 BRIEF test pairs from an isotropic Gaussian, clamped
/// to the patch.
fn brief_pattern(patch_size: u32, seed: u64) -> Vec<(f32, f32, f32, f32)> {
    let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
    let sigma = patch_size as f32 / 5.0;
    let half = (patch_size / 2) as f32 - 1.0;
    let gauss = move |rng: &mut rand::rngs::SmallRng| -> f32 {
        // Box–Muller; clamped to the patch.
        let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
        let u2: f32 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos();
        (z * sigma).clamp(-half, half)
    };
    (0..256).map(|_| (gauss(&mut rng), gauss(&mut rng), gauss(&mut rng), gauss(&mut rng))).collect()
}

/// Detect ORB keypoints and compute 256-bit steered-BRIEF descriptors.
///
/// Returns the keypoints (strongest first, at most `max_features`) and one
/// 32-byte descriptor per keypoint. Textureless images yield empty output
/// rather than an error — the descriptor pipeline treats "no keypoints" as
/// "no votes".
pub fn orb_detect_and_compute(
    img: &GrayImage,
    params: &OrbParams,
) -> Result<(Vec<KeyPoint>, BinaryDescriptors)> {
    let border = (params.patch_size / 2 + 4).max(7);
    if img.width() < 2 * border + 1 || img.height() < 2 * border + 1 {
        return Err(FeatureError::ImageTooSmall {
            width: img.width(),
            height: img.height(),
            min: 2 * border + 1,
        });
    }
    if params.max_features == 0 {
        return Err(FeatureError::InvalidParameter {
            name: "max_features",
            msg: "must be >= 1".into(),
        });
    }

    // --- FAST detection with non-maximum suppression over a 3x3 window.
    let t = params.fast_threshold as i16;
    let (w, h) = img.dimensions();
    let mut scores: Vec<(u32, u32, f32)> = Vec::new();
    let mut score_map = GrayF32::new(w, h);
    for y in border..h - border {
        for x in border..w - border {
            if let Some(s) = fast_score(img, x, y, t) {
                score_map.put(x, y, s);
            }
        }
    }
    for y in border..h - border {
        for x in border..w - border {
            let s = score_map.get(x, y);
            if s <= 0.0 {
                continue;
            }
            let mut is_max = true;
            'nms: for dy in -1i64..=1 {
                for dx in -1i64..=1 {
                    if (dx, dy) == (0, 0) {
                        continue;
                    }
                    let n = score_map.get_clamped(x as i64 + dx, y as i64 + dy);
                    if n > s || (n == s && (dy < 0 || (dy == 0 && dx < 0))) {
                        is_max = false;
                        break 'nms;
                    }
                }
            }
            if is_max {
                scores.push((x, y, s));
            }
        }
    }

    // --- Harris ranking, keep the strongest `max_features`.
    let img_f = img.to_f32();
    let mut ranked: Vec<(u32, u32, f32, f32)> =
        scores.into_iter().map(|(x, y, s)| (x, y, s, harris_response(&img_f, x, y, 3))).collect();
    ranked.sort_by(|a, b| taor_imgproc::cmp::nan_last_desc_f32(a.3, b.3));
    ranked.truncate(params.max_features);

    // --- Orientation + steered BRIEF over a smoothed image (BRIEF needs
    // pre-smoothing to be stable; Calonder et al. use a Gaussian).
    let smoothed = gaussian_blur(&img_f, 2.0).expect("fixed sigma is valid").to_u8(); // taor-lint: allow(panic::expect) — invariant expect: the message states why this cannot fail on valid state
    let pattern = brief_pattern(params.patch_size, params.pattern_seed);
    let radius = (params.patch_size / 2) as i64 - 1;

    let mut keypoints = Vec::with_capacity(ranked.len());
    let mut descriptors = BinaryDescriptors::new(32);
    for (x, y, fast_s, _harris) in ranked {
        let angle = intensity_centroid_angle(img, x, y, radius.min(15));
        let (sin_t, cos_t) = angle.sin_cos();
        let mut desc = [0u8; 32];
        for (bit, &(ax, ay, bx, by)) in pattern.iter().enumerate() {
            // Steer the test pair by the keypoint orientation.
            let rax = (ax * cos_t - ay * sin_t).round() as i64;
            let ray = (ax * sin_t + ay * cos_t).round() as i64;
            let rbx = (bx * cos_t - by * sin_t).round() as i64;
            let rby = (bx * sin_t + by * cos_t).round() as i64;
            let va = smoothed.get_clamped(x as i64 + rax, y as i64 + ray);
            let vb = smoothed.get_clamped(x as i64 + rbx, y as i64 + rby);
            if va < vb {
                desc[bit / 8] |= 1 << (bit % 8);
            }
        }
        keypoints.push(KeyPoint {
            x: x as f32,
            y: y as f32,
            size: params.patch_size as f32,
            angle,
            response: fast_s,
            octave: 0,
        });
        descriptors.push(&desc);
    }
    Ok((keypoints, descriptors))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keypoint::hamming;

    /// A high-contrast test card with corners: dark background, bright
    /// rotated square plus a triangle.
    fn test_card(rot: f32) -> GrayImage {
        use taor_imgproc::draw::{p2, Canvas};
        let mut c = Canvas::new(96, 96, [10, 10, 10]);
        c.fill_rot_rect(48.0, 48.0, 40.0, 24.0, rot, [230, 230, 230]);
        c.fill_polygon(&[p2(20.0, 70.0), p2(38.0, 88.0), p2(20.0, 88.0)], [180, 180, 180]);
        taor_imgproc::color::rgb_to_gray(c.image())
    }

    #[test]
    fn detects_corners_on_test_card() {
        let img = test_card(0.3);
        let (kps, descs) = orb_detect_and_compute(&img, &OrbParams::default()).unwrap();
        assert!(!kps.is_empty(), "expected corners on the test card");
        assert_eq!(kps.len(), descs.len());
        assert_eq!(descs.width_bytes(), 32);
    }

    #[test]
    fn textureless_image_yields_no_keypoints() {
        let img = GrayImage::filled(96, 96, [128]);
        let (kps, descs) = orb_detect_and_compute(&img, &OrbParams::default()).unwrap();
        assert!(kps.is_empty());
        assert!(descs.is_empty());
    }

    #[test]
    fn too_small_image_is_an_error() {
        let img = GrayImage::new(10, 10);
        assert!(matches!(
            orb_detect_and_compute(&img, &OrbParams::default()),
            Err(FeatureError::ImageTooSmall { .. })
        ));
    }

    #[test]
    fn max_features_caps_output() {
        let img = test_card(0.0);
        let params = OrbParams { max_features: 3, ..OrbParams::default() };
        let (kps, _) = orb_detect_and_compute(&img, &params).unwrap();
        assert!(kps.len() <= 3);
    }

    #[test]
    fn zero_max_features_is_an_error() {
        let img = test_card(0.0);
        let params = OrbParams { max_features: 0, ..OrbParams::default() };
        assert!(orb_detect_and_compute(&img, &params).is_err());
    }

    #[test]
    fn descriptors_are_deterministic() {
        let img = test_card(0.5);
        let (_, d1) = orb_detect_and_compute(&img, &OrbParams::default()).unwrap();
        let (_, d2) = orb_detect_and_compute(&img, &OrbParams::default()).unwrap();
        assert_eq!(d1, d2);
    }

    #[test]
    fn same_scene_matches_better_than_different_scene() {
        // Two renderings of nearly the same scene vs. a very different one.
        let a = test_card(0.30);
        let b = test_card(0.34);
        let other = {
            use taor_imgproc::draw::Canvas;
            let mut c = Canvas::new(96, 96, [200, 200, 200]);
            c.fill_rot_rect(25.0, 25.0, 14.0, 14.0, 0.8, [20, 20, 20]);
            c.fill_rot_rect(70.0, 30.0, 18.0, 10.0, 2.1, [40, 40, 40]);
            c.fill_rot_rect(40.0, 70.0, 12.0, 20.0, 1.3, [10, 10, 10]);
            taor_imgproc::color::rgb_to_gray(c.image())
        };
        let p = OrbParams::default();
        let (_, da) = orb_detect_and_compute(&a, &p).unwrap();
        let (_, db) = orb_detect_and_compute(&b, &p).unwrap();
        let (_, dc) = orb_detect_and_compute(&other, &p).unwrap();
        assert!(!da.is_empty() && !db.is_empty() && !dc.is_empty());
        let mean_best = |q: &BinaryDescriptors, t: &BinaryDescriptors| -> f32 {
            let mut acc = 0.0;
            for i in 0..q.len() {
                let best = (0..t.len()).map(|j| hamming(q.row(i), t.row(j))).min().unwrap();
                acc += best as f32;
            }
            acc / q.len() as f32
        };
        let near = mean_best(&da, &db);
        let far = mean_best(&da, &dc);
        assert!(near < far, "near {near} !< far {far}");
    }

    #[test]
    fn orientation_angle_in_range() {
        let img = test_card(1.0);
        let (kps, _) = orb_detect_and_compute(&img, &OrbParams::default()).unwrap();
        for kp in kps {
            assert!((0.0..2.0 * std::f32::consts::PI + 1e-4).contains(&kp.angle));
        }
    }
}
