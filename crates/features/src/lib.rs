//! # taor-features
//!
//! Keypoint detectors and descriptors for the descriptor-matching pipeline
//! of Chiatti et al. (EDBT/ICDT 2019 workshops), §3.3.
//!
//! The paper uses OpenCV's SIFT, SURF and ORB with brute-force matching and
//! Lowe's ratio test; this crate re-implements all three from the original
//! publications:
//!
//! * [`sift`] — Lowe 2004: Gaussian scale space, DoG extrema, sub-pixel
//!   refinement, orientation histograms, 4×4×8 = 128-d descriptors,
//! * [`surf`] — Bay et al. 2006: integral-image box-filter Hessian
//!   pyramid, Haar-wavelet orientation and 64-d descriptors,
//! * [`orb`] — Rublee et al. 2011: FAST-9 corners with Harris ranking,
//!   intensity-centroid orientation, 256-bit steered BRIEF,
//! * [`matcher`] — brute-force kNN for float (L2) and binary (Hamming)
//!   descriptors with the ratio test, plus a kd-tree approximate matcher
//!   ([`kdtree`]) standing in for FLANN (the paper reports FLANN gave no
//!   gain at this dataset scale — reproduced by `taor-bench`'s `matching`
//!   bench),
//! * [`hnsw`] / [`mih`] — the sub-linear gallery indexes that replace
//!   brute force once the gallery grows past the paper's toy scale: an
//!   HNSW graph for float descriptors/embeddings and an exact
//!   multi-index-hashing table for binary codes, with a recall@k-vs-exact
//!   harness in [`recall`].

#![forbid(unsafe_code)]

pub mod error;
pub mod evaluation;
pub mod hnsw;
pub mod kdtree;
pub mod keypoint;
pub mod matcher;
pub mod mih;
pub mod orb;
pub mod ransac;
pub mod recall;
pub mod sift;
pub mod surf;

pub use error::{FeatureError, Result};
pub use evaluation::{matching_score, repeatability};
pub use hnsw::{HnswIndex, HnswParams};
pub use keypoint::{BinaryDescriptors, FloatDescriptors, KeyPoint};
pub use matcher::{
    knn_match_binary, knn_match_binary_naive, knn_match_float, knn_match_float_naive,
    ratio_test_matches, DMatch, RatioMatch,
};
pub use mih::{MihIndex, MihParams};
pub use orb::{orb_detect_and_compute, OrbParams};
pub use ransac::{verify_matches, RansacParams, Similarity, Verification};
pub use recall::{exact_knn_binary, exact_knn_float, mean_recall, recall_at_k, recall_at_k_u32};
pub use sift::{sift_detect_and_compute, SiftParams};
pub use surf::{surf_detect_and_compute, SurfParams};
