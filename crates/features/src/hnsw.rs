// taor-lint: allow(panic::index) — dense graph kernel: node ids are row indices created in-bounds at insertion time and bounded by the adjacency arrays they index.
//! HNSW approximate nearest-neighbour index for float descriptors.
//!
//! The paper's §3.3 FLANN note — "did not lead to any performance gains …
//! most likely due to the fairly limited size of the input datasets" —
//! stops holding once the gallery grows to thousands of views (the
//! ROADMAP's serving direction). This module implements Hierarchical
//! Navigable Small World graphs (Malkov & Yashunin 2016): layered
//! insertion with seeded geometric level draws, greedy descent through the
//! upper layers and an `ef`-bounded best-first search at layer 0.
//!
//! **Scoring** reuses the PR 3 norm-trick kernel economics: graph
//! traversal ranks candidates by `‖q‖² + ‖t‖² − 2·q·t` with the cached
//! per-row norms of [`FloatDescriptors::norms_sq`], and the final
//! candidate set is rescored with the exact [`l2_sq`] before anything is
//! returned — so reported distances are always exact, and the replayed
//! naive update sequence reproduces [`knn_match_float_naive`]'s tie
//! behaviour whenever the true top-2 sit inside the candidate set.
//!
//! **Determinism.** Construction is sequential in row order with all
//! level draws taken from one seeded [`SmallRng`] stream; every
//! comparison goes through `total_cmp` with the node index as the tie
//! break; queries allocate their own visited bitmaps. Index build and
//! query results are therefore byte-identical across `TAOR_THREADS`
//! widths and repeated spawns.
//!
//! **Quarantine.** Rows whose squared norm is non-finite or beyond the
//! norm-trick validity bound never enter the graph (they can never win in
//! the oracle either, except as its `(0, ∞)` placeholder). Queries that
//! are themselves non-finite — and any query when `ef ≥ n` — take the
//! exact scalar loop over *all* rows, which makes the degenerate
//! configuration bit-identical to [`knn_match_float_naive`].
//!
//! [`knn_match_float_naive`]: crate::matcher::knn_match_float_naive

use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

use crate::error::{FeatureError, Result};
use crate::keypoint::{l2_sq, FloatDescriptors};
use crate::matcher::{DMatch, RatioMatch};

/// Hard cap on drawn levels: with `m ≥ 2` the draw exceeds this with
/// probability `< 2⁻¹⁶` per node; the cap only bounds the adjacency
/// allocation.
const MAX_LEVEL: usize = 16;

/// Rows with squared norms above this (or non-finite) are quarantined out
/// of the graph — the same bound the matcher's GEMM kernel uses to keep
/// the norm-trick error analysis valid.
const MAX_CLEAN_NORM: f32 = 1e30;

/// HNSW build/search knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HnswParams {
    /// Max neighbours per node on layers ≥ 1 (layer 0 keeps `2m`).
    pub m: usize,
    /// Dynamic candidate-list size during construction.
    pub ef_construction: usize,
    /// Dynamic candidate-list size during search; `ef ≥ n` degenerates to
    /// the exact scalar loop.
    pub ef_search: usize,
    /// Seed of the level-draw stream: equal seeds ⇒ identical graphs.
    pub seed: u64,
}

impl Default for HnswParams {
    fn default() -> Self {
        HnswParams { m: 16, ef_construction: 100, ef_search: 96, seed: 0x5EED }
    }
}

/// A scored graph node; orders by `(distance, index)` with `total_cmp`,
/// so heaps never see the incomparability that poisons `partial_cmp`.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Cand {
    d: f32,
    idx: u32,
}

impl Eq for Cand {}

impl Ord for Cand {
    fn cmp(&self, other: &Self) -> Ordering {
        self.d.total_cmp(&other.d).then(self.idx.cmp(&other.idx))
    }
}

impl PartialOrd for Cand {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// An owned HNSW index over a descriptor matrix.
#[derive(Debug)]
pub struct HnswIndex {
    descs: FloatDescriptors,
    params: HnswParams,
    /// Drawn level per row (quarantined rows keep their draw so the RNG
    /// stream — and therefore the graph — is independent of which rows
    /// happen to be dirty later in the matrix).
    levels: Vec<usize>,
    /// `links[node][level]` = neighbour ids.
    links: Vec<Vec<Vec<u32>>>,
    /// Top-level entry point, `None` while the graph is empty.
    entry: Option<u32>,
    max_level: usize,
    /// Whether the row passed the norm quarantine and joined the graph.
    clean: Vec<bool>,
}

fn dot(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(&x, &y)| x * y).sum()
}

impl HnswIndex {
    /// Build an index owning `descs`. Construction is sequential and
    /// deterministic in `params.seed`.
    pub fn build(descs: FloatDescriptors, params: HnswParams) -> Result<Self> {
        if params.m < 2 {
            return Err(FeatureError::InvalidParameter { name: "m", msg: "must be >= 2".into() });
        }
        if params.ef_construction == 0 {
            return Err(FeatureError::InvalidParameter {
                name: "ef_construction",
                msg: "must be >= 1".into(),
            });
        }
        if params.ef_search == 0 {
            return Err(FeatureError::InvalidParameter {
                name: "ef_search",
                msg: "must be >= 1".into(),
            });
        }
        let n = descs.len();
        let ml = 1.0 / (params.m as f64).ln();
        let mut rng = SmallRng::seed_from_u64(params.seed);
        let levels: Vec<usize> = (0..n)
            .map(|_| {
                // u ∈ (0, 1]: never ln(0).
                let u = 1.0 - rng.gen::<f64>();
                (-u.ln() * ml) as usize
            })
            .map(|l| l.min(MAX_LEVEL))
            .collect();
        let clean: Vec<bool> =
            descs.norms_sq().iter().map(|n| n.is_finite() && *n <= MAX_CLEAN_NORM).collect();
        let links: Vec<Vec<Vec<u32>>> = levels.iter().map(|&l| vec![Vec::new(); l + 1]).collect();
        let mut index =
            HnswIndex { descs, params, levels, links, entry: None, max_level: 0, clean };
        for i in 0..n {
            if index.clean[i] {
                index.insert(i);
            }
        }
        Ok(index)
    }

    /// Number of rows (including quarantined ones).
    pub fn len(&self) -> usize {
        self.descs.len()
    }

    /// Whether the underlying matrix is empty.
    pub fn is_empty(&self) -> bool {
        self.descs.is_empty()
    }

    /// Descriptor width.
    pub fn width(&self) -> usize {
        self.descs.width()
    }

    /// The build/search knobs.
    pub fn params(&self) -> HnswParams {
        self.params
    }

    /// Borrow the indexed descriptors.
    pub fn descriptors(&self) -> &FloatDescriptors {
        &self.descs
    }

    /// Approximate distance of `q` (with squared norm `qn`) to row `i`:
    /// the PR 3 norm-trick expansion over the cached row norms. Used only
    /// to *rank* candidates; returned distances are always exact.
    fn approx_dist(&self, q: &[f32], qn: f32, i: usize) -> f32 {
        qn + self.descs.norms_sq()[i] - 2.0 * dot(q, self.descs.row(i))
    }

    /// Norm-trick distance between two gallery rows (neighbour-selection
    /// diversification).
    fn row_dist(&self, a: usize, b: usize) -> f32 {
        let norms = self.descs.norms_sq();
        norms[a] + norms[b] - 2.0 * dot(self.descs.row(a), self.descs.row(b))
    }

    fn insert(&mut self, i: usize) {
        let lvl = self.levels[i];
        let Some(entry) = self.entry else {
            self.entry = Some(i as u32);
            self.max_level = lvl;
            return;
        };
        let q: Vec<f32> = self.descs.row(i).to_vec();
        let qn = self.descs.norms_sq()[i];
        let mut visited = vec![0u64; self.descs.len().div_ceil(64)];
        let mut eps = vec![Cand { d: self.approx_dist(&q, qn, entry as usize), idx: entry }];
        // Greedy descent through the layers above the new node's level.
        for l in ((lvl + 1)..=self.max_level).rev() {
            eps = self.search_layer(&q, qn, &eps, l, 1, &mut visited);
            visited.fill(0);
        }
        for l in (0..=lvl.min(self.max_level)).rev() {
            let w = self.search_layer(&q, qn, &eps, l, self.params.ef_construction, &mut visited);
            visited.fill(0);
            let cap = if l == 0 { 2 * self.params.m } else { self.params.m };
            let selected = self.select_neighbors(&w, cap);
            self.links[i][l] = selected.iter().map(|c| c.idx).collect();
            for c in &selected {
                let nb = c.idx as usize;
                self.links[nb][l].push(i as u32);
                if self.links[nb][l].len() > cap {
                    self.prune(nb, l, cap);
                }
            }
            eps = w;
        }
        if lvl > self.max_level {
            self.max_level = lvl;
            self.entry = Some(i as u32);
        }
    }

    /// Keep at most `cap` of the ascending-sorted candidates, preferring
    /// diverse ones (Malkov's heuristic: admit a candidate only when it is
    /// closer to the query than to every already-selected neighbour), then
    /// fill remaining slots with the nearest of the skipped.
    fn select_neighbors(&self, sorted: &[Cand], cap: usize) -> Vec<Cand> {
        let mut out: Vec<Cand> = Vec::with_capacity(cap);
        let mut skipped: Vec<Cand> = Vec::new();
        for &c in sorted {
            if out.len() >= cap {
                break;
            }
            let diverse = out.iter().all(|s| self.row_dist(c.idx as usize, s.idx as usize) >= c.d);
            if diverse {
                out.push(c);
            } else {
                skipped.push(c);
            }
        }
        for &c in &skipped {
            if out.len() >= cap {
                break;
            }
            out.push(c);
        }
        out
    }

    /// Re-select a node's neighbour list after a reverse edge pushed it
    /// over `cap`.
    fn prune(&mut self, node: usize, level: usize, cap: usize) {
        let mut cands: Vec<Cand> = self.links[node][level]
            .iter()
            .map(|&nb| Cand { d: self.row_dist(node, nb as usize), idx: nb })
            .collect();
        cands.sort_unstable();
        cands.dedup_by_key(|c| c.idx);
        let selected = self.select_neighbors(&cands, cap);
        self.links[node][level] = selected.iter().map(|c| c.idx).collect();
    }

    /// `ef`-bounded best-first search of one layer from the entry set;
    /// returns up to `ef` candidates sorted ascending by `(distance,
    /// index)`. Distances are norm-trick approximations.
    fn search_layer(
        &self,
        q: &[f32],
        qn: f32,
        eps: &[Cand],
        level: usize,
        ef: usize,
        visited: &mut [u64],
    ) -> Vec<Cand> {
        let mut cands: BinaryHeap<Reverse<Cand>> = BinaryHeap::new();
        let mut results: BinaryHeap<Cand> = BinaryHeap::new();
        for &ep in eps {
            let word = ep.idx as usize / 64;
            let bit = 1u64 << (ep.idx as usize % 64);
            if visited[word] & bit == 0 {
                visited[word] |= bit;
                cands.push(Reverse(ep));
                results.push(ep);
                if results.len() > ef {
                    results.pop();
                }
            }
        }
        while let Some(Reverse(c)) = cands.pop() {
            if results.len() >= ef {
                if let Some(worst) = results.peek() {
                    if c > *worst {
                        break;
                    }
                }
            }
            for &nb in &self.links[c.idx as usize][level] {
                let word = nb as usize / 64;
                let bit = 1u64 << (nb as usize % 64);
                if visited[word] & bit != 0 {
                    continue;
                }
                visited[word] |= bit;
                let cand = Cand { d: self.approx_dist(q, qn, nb as usize), idx: nb };
                let admit = match results.peek() {
                    Some(worst) if results.len() >= ef => cand < *worst,
                    _ => true,
                };
                if admit {
                    results.push(cand);
                    if results.len() > ef {
                        results.pop();
                    }
                    cands.push(Reverse(cand));
                }
            }
        }
        let mut out = results.into_vec();
        out.sort_unstable();
        out
    }

    /// Layer-0 candidate set for one query: greedy descent from the entry
    /// point, then an `ef`-bounded search of the bottom layer. Caller must
    /// have checked `entry` is `Some` and the query is finite.
    fn graph_candidates(&self, q: &[f32], qn: f32, ef: usize) -> Vec<Cand> {
        let Some(entry) = self.entry else {
            return Vec::new();
        };
        let mut visited = vec![0u64; self.descs.len().div_ceil(64)];
        let mut eps = vec![Cand { d: self.approx_dist(q, qn, entry as usize), idx: entry }];
        for l in (1..=self.max_level).rev() {
            eps = self.search_layer(q, qn, &eps, l, 1, &mut visited);
            visited.fill(0);
        }
        self.search_layer(q, qn, &eps, 0, ef, &mut visited)
    }

    /// `k` nearest neighbours of `query` as `(row index, exact squared-L2
    /// distance)`, sorted ascending by `(distance, index)`; non-finite
    /// distances are dropped. Uses `params.ef_search`.
    pub fn search(&self, query: &[f32], k: usize) -> Vec<(usize, f32)> {
        self.search_ef(query, k, self.params.ef_search)
    }

    /// [`HnswIndex::search`] with an explicit `ef` (clamped up to `k`).
    /// `ef ≥ n` — or a non-finite query — runs the exact scalar scan over
    /// every row instead of the graph.
    pub fn search_ef(&self, query: &[f32], k: usize, ef: usize) -> Vec<(usize, f32)> {
        let n = self.descs.len();
        if n == 0 || k == 0 || query.len() != self.descs.width() {
            return Vec::new();
        }
        let ef = ef.max(k);
        let qn: f32 = query.iter().map(|&v| v * v).sum();
        let q_clean = qn.is_finite() && qn <= MAX_CLEAN_NORM;
        let mut scored: Vec<(usize, f32)> = if ef >= n || !q_clean || self.entry.is_none() {
            (0..n).map(|i| (i, l2_sq(query, self.descs.row(i)))).collect()
        } else {
            self.graph_candidates(query, qn, ef)
                .iter()
                .map(|c| (c.idx as usize, l2_sq(query, self.descs.row(c.idx as usize))))
                .collect()
        };
        scored.retain(|&(_, d)| d.is_finite());
        scored.sort_unstable_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        scored.truncate(k);
        scored
    }

    /// 2-NN match every query row against the index, mirroring
    /// [`crate::matcher::knn_match_float`]'s output shape. When
    /// `ef_search ≥ n` (or a query row is non-finite) the output is
    /// bit-identical to [`crate::matcher::knn_match_float_naive`];
    /// otherwise the candidate set is exact-rescored with the naive update
    /// sequence, so any query whose true top-2 are found reproduces the
    /// oracle's result tie-for-tie. Queries run in parallel with an
    /// ordered collect.
    pub fn knn_match(&self, query: &FloatDescriptors) -> Result<Vec<RatioMatch>> {
        if query.is_empty() || self.descs.is_empty() {
            return Ok(Vec::new());
        }
        if query.width() != self.descs.width() {
            return Err(FeatureError::DescriptorWidthMismatch {
                left: query.width(),
                right: self.descs.width(),
            });
        }
        Ok((0..query.len())
            .into_par_iter()
            .map(|qi| self.ratio_match_row(query.row(qi), qi))
            .collect())
    }

    fn ratio_match_row(&self, q: &[f32], qi: usize) -> RatioMatch {
        let n = self.descs.len();
        let ef = self.params.ef_search.max(2);
        let qn: f32 = q.iter().map(|&v| v * v).sum();
        let q_clean = qn.is_finite() && qn <= MAX_CLEAN_NORM;
        let mut best = DMatch { query_idx: qi, train_idx: 0, distance: f32::INFINITY };
        let mut second: Option<DMatch> = None;
        let mut update = |ti: usize, d: f32| {
            if d < best.distance {
                second = Some(best);
                best = DMatch { query_idx: qi, train_idx: ti, distance: d };
            } else if second.is_none_or(|s| d < s.distance) {
                second = Some(DMatch { query_idx: qi, train_idx: ti, distance: d });
            }
        };
        if ef >= n || !q_clean || self.entry.is_none() {
            // Exact path: replay the oracle loop over every row.
            for ti in 0..n {
                update(ti, l2_sq(q, self.descs.row(ti)));
            }
        } else {
            // Approximate path: exact-rescore the candidate set in
            // ascending row order — the same update order the oracle uses.
            let mut idxs: Vec<u32> =
                self.graph_candidates(q, qn, ef).iter().map(|c| c.idx).collect();
            idxs.sort_unstable();
            for &ti in &idxs {
                update(ti as usize, l2_sq(q, self.descs.row(ti as usize)));
            }
        }
        let second = second.filter(|s| s.distance.is_finite());
        RatioMatch { best, second }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matcher::knn_match_float_naive;
    use rand::{Rng, SeedableRng};

    fn random_descs(n: usize, w: usize, seed: u64) -> FloatDescriptors {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut d = FloatDescriptors::new(w);
        let mut row = vec![0.0f32; w];
        for _ in 0..n {
            for v in &mut row {
                *v = rng.gen_range(-1.0..1.0);
            }
            d.push(&row);
        }
        d
    }

    #[test]
    fn degenerate_ef_matches_oracle_exactly() {
        let train = random_descs(120, 16, 11);
        let query = random_descs(30, 16, 12);
        let index =
            HnswIndex::build(train.clone(), HnswParams { ef_search: 120, ..HnswParams::default() })
                .unwrap();
        let got = index.knn_match(&query).unwrap();
        let want = knn_match_float_naive(&query, &train).unwrap();
        assert_eq!(got, want);
    }

    #[test]
    fn graph_search_high_recall_on_random_data() {
        let train = random_descs(800, 24, 21);
        let query = random_descs(60, 24, 22);
        let index = HnswIndex::build(train.clone(), HnswParams::default()).unwrap();
        let exact = knn_match_float_naive(&query, &train).unwrap();
        let got = index.knn_match(&query).unwrap();
        let hits =
            got.iter().zip(&exact).filter(|(g, e)| g.best.distance <= e.best.distance).count();
        assert!(hits >= 57, "recall@1 too low: {hits}/60");
    }

    #[test]
    fn search_returns_sorted_exact_distances() {
        let train = random_descs(300, 8, 31);
        let index = HnswIndex::build(train.clone(), HnswParams::default()).unwrap();
        let q: Vec<f32> = train.row(17).to_vec();
        let nn = index.search(&q, 5);
        assert_eq!(nn.len(), 5);
        assert_eq!(nn[0], (17, 0.0), "self-query must find itself");
        for w in nn.windows(2) {
            assert!(w[0].1 <= w[1].1, "distances must be ascending");
        }
        for &(i, d) in &nn {
            assert_eq!(d, l2_sq(&q, train.row(i)), "distances must be exact");
        }
    }

    #[test]
    fn nan_rows_are_quarantined() {
        let mut train = FloatDescriptors::new(2);
        train.push(&[f32::NAN, 0.0]);
        train.push(&[1.0, 1.0]);
        train.push(&[f32::NAN, f32::NAN]);
        train.push(&[2.0, 2.0]);
        let mut query = FloatDescriptors::new(2);
        query.push(&[1.1, 1.0]);
        query.push(&[f32::NAN, 0.0]);
        let index = HnswIndex::build(train.clone(), HnswParams::default()).unwrap();
        let got = index.knn_match(&query).unwrap();
        let want = knn_match_float_naive(&query, &train).unwrap();
        assert_eq!(got, want);
    }

    #[test]
    fn all_nan_gallery_yields_placeholder() {
        let mut train = FloatDescriptors::new(2);
        train.push(&[f32::NAN, f32::NAN]);
        train.push(&[f32::NAN, 0.0]);
        let mut query = FloatDescriptors::new(2);
        query.push(&[0.0, 0.0]);
        let index = HnswIndex::build(train.clone(), HnswParams::default()).unwrap();
        let got = index.knn_match(&query).unwrap();
        let want = knn_match_float_naive(&query, &train).unwrap();
        assert_eq!(got, want);
        assert_eq!(got[0].best.train_idx, 0);
        assert!(got[0].best.distance.is_infinite());
        assert!(got[0].second.is_none());
    }

    #[test]
    fn empty_inputs_and_width_mismatch() {
        let empty = FloatDescriptors::new(4);
        let index = HnswIndex::build(empty, HnswParams::default()).unwrap();
        assert!(index.knn_match(&random_descs(3, 4, 1)).unwrap().is_empty());
        assert!(index.search(&[0.0; 4], 2).is_empty());
        let index = HnswIndex::build(random_descs(10, 4, 2), HnswParams::default()).unwrap();
        assert!(index.knn_match(&FloatDescriptors::new(4)).unwrap().is_empty());
        assert!(index.knn_match(&random_descs(2, 8, 3)).is_err());
    }

    #[test]
    fn invalid_params_rejected() {
        let d = random_descs(4, 4, 1);
        assert!(HnswIndex::build(d.clone(), HnswParams { m: 1, ..HnswParams::default() }).is_err());
        assert!(HnswIndex::build(
            d.clone(),
            HnswParams { ef_construction: 0, ..HnswParams::default() }
        )
        .is_err());
        assert!(HnswIndex::build(d, HnswParams { ef_search: 0, ..HnswParams::default() }).is_err());
    }

    #[test]
    fn rebuild_is_byte_identical() {
        let train = random_descs(400, 16, 77);
        let a = HnswIndex::build(train.clone(), HnswParams::default()).unwrap();
        let b = HnswIndex::build(train, HnswParams::default()).unwrap();
        assert_eq!(a.links, b.links);
        assert_eq!(a.entry, b.entry);
        assert_eq!(a.levels, b.levels);
    }
}
