// taor-lint: allow(panic::index) — dense numeric kernel: indices are derived from dimensions validated at the public boundary and bounded by the enclosing loops.
//! Detector/descriptor evaluation under known geometry — the standard
//! repeatability and matching-score protocol (Mikolajczyk & Schmid).
//!
//! The paper compares SIFT/SURF/ORB only through downstream recognition
//! accuracy; this module measures the detectors directly: warp an image
//! by a known similarity transform, detect keypoints in both, and ask
//! (a) how many keypoints *re-occur* at the transformed location
//! (repeatability) and (b) how many descriptor matches are geometrically
//! correct (matching score). The `descriptors` bench uses it to explain
//! *why* the descriptor pipelines behave as they do on synthetic renders.

use crate::keypoint::KeyPoint;
use crate::matcher::DMatch;
use crate::ransac::Similarity;

/// Repeatability of a detector under a known transform: the fraction of
/// keypoints in `a` whose transformed location lies within `tolerance`
/// pixels of some keypoint in `b`. Symmetric versions divide by the
/// smaller set; this uses `a` as the reference, matching common practice.
///
/// Returns 0 when `a` is empty.
pub fn repeatability(
    a: &[KeyPoint],
    b: &[KeyPoint],
    transform: &Similarity,
    tolerance: f32,
) -> f64 {
    if a.is_empty() {
        return 0.0;
    }
    let tol_sq = tolerance * tolerance;
    let hits = a
        .iter()
        .filter(|ka| {
            let (px, py) = transform.apply((ka.x, ka.y));
            b.iter().any(|kb| {
                let dx = kb.x - px;
                let dy = kb.y - py;
                dx * dx + dy * dy <= tol_sq
            })
        })
        .count();
    hits as f64 / a.len() as f64
}

/// Matching score: fraction of `matches` that are geometrically correct
/// under the known transform (query keypoint maps to within `tolerance`
/// of its matched train keypoint).
pub fn matching_score(
    query_kps: &[KeyPoint],
    train_kps: &[KeyPoint],
    matches: &[DMatch],
    transform: &Similarity,
    tolerance: f32,
) -> f64 {
    if matches.is_empty() {
        return 0.0;
    }
    let tol_sq = tolerance * tolerance;
    let correct = matches
        .iter()
        .filter(|m| {
            let q = &query_kps[m.query_idx];
            let t = &train_kps[m.train_idx];
            let (px, py) = transform.apply((q.x, q.y));
            let dx = t.x - px;
            let dy = t.y - py;
            dx * dx + dy * dy <= tol_sq
        })
        .count();
    correct as f64 / matches.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kp(x: f32, y: f32) -> KeyPoint {
        KeyPoint::at(x, y)
    }

    #[test]
    fn perfect_repeatability_under_identity() {
        let kps = vec![kp(1.0, 2.0), kp(10.0, 10.0), kp(5.0, 7.0)];
        let r = repeatability(&kps, &kps, &Similarity::identity(), 1.0);
        assert_eq!(r, 1.0);
    }

    #[test]
    fn repeatability_tracks_translation() {
        let a = vec![kp(0.0, 0.0), kp(10.0, 0.0)];
        let b = vec![kp(5.0, 5.0), kp(15.0, 5.0)];
        let t = Similarity { a: 1.0, b: 0.0, tx: 5.0, ty: 5.0 };
        assert_eq!(repeatability(&a, &b, &t, 1.0), 1.0);
        // Wrong transform: nothing lands.
        assert_eq!(repeatability(&a, &b, &Similarity::identity(), 1.0), 0.0);
    }

    #[test]
    fn partial_repeatability() {
        let a = vec![kp(0.0, 0.0), kp(50.0, 50.0)];
        let b = vec![kp(0.0, 0.0)];
        let r = repeatability(&a, &b, &Similarity::identity(), 2.0);
        assert!((r - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_inputs_are_zero() {
        assert_eq!(repeatability(&[], &[kp(0.0, 0.0)], &Similarity::identity(), 1.0), 0.0);
        assert_eq!(matching_score(&[], &[], &[], &Similarity::identity(), 1.0), 0.0);
    }

    #[test]
    fn matching_score_counts_correct_matches() {
        let q = vec![kp(0.0, 0.0), kp(10.0, 0.0)];
        let t = vec![kp(3.0, 0.0), kp(13.0, 0.0), kp(50.0, 50.0)];
        let transform = Similarity { a: 1.0, b: 0.0, tx: 3.0, ty: 0.0 };
        let matches = vec![
            DMatch { query_idx: 0, train_idx: 0, distance: 0.1 }, // correct
            DMatch { query_idx: 1, train_idx: 2, distance: 0.2 }, // wrong
        ];
        let s = matching_score(&q, &t, &matches, &transform, 1.0);
        assert!((s - 0.5).abs() < 1e-12);
    }
}
