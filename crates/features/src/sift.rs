// taor-lint: allow(panic::index) — dense numeric kernel: indices are derived from dimensions validated at the public boundary and bounded by the enclosing loops.
//! SIFT: Scale-Invariant Feature Transform (Lowe, IJCV 2004).
//!
//! "the SIFT algorithm is based on the main rationale of describing images
//! through scale-invariant keypoints. We used L2 norm as distance measure
//! for the matching and trimmed the resulting matching keypoints to the
//! second-nearest neighbour" (paper §3.3).
//!
//! Implements the full pipeline from the IJCV paper: incremental Gaussian
//! scale space, difference-of-Gaussians extrema with sub-pixel quadratic
//! refinement, low-contrast and edge-response rejection, 36-bin gradient
//! orientation histograms with multiple-peak splitting, and the 4×4×8
//! descriptor with trilinear binning, normalisation, 0.2 clamping and
//! renormalisation.

use crate::error::{FeatureError, Result};
use crate::keypoint::{FloatDescriptors, KeyPoint};
use taor_imgproc::filter::gaussian_blur;
use taor_imgproc::image::{GrayF32, GrayImage};
use taor_imgproc::resize::resize_bilinear_f32;

/// SIFT parameters (defaults follow Lowe 2004 / OpenCV).
#[derive(Debug, Clone)]
pub struct SiftParams {
    /// Scales per octave (Lowe's `s`; 3 is standard).
    pub n_octave_layers: usize,
    /// DoG contrast threshold (on images scaled to [0,1]).
    pub contrast_threshold: f32,
    /// Edge-response threshold on the principal-curvature ratio.
    pub edge_threshold: f32,
    /// Base blur of the first scale.
    pub sigma: f32,
    /// Maximum keypoints retained (strongest first); 0 = unlimited.
    pub max_features: usize,
}

impl Default for SiftParams {
    fn default() -> Self {
        SiftParams {
            n_octave_layers: 3,
            contrast_threshold: 0.04,
            edge_threshold: 10.0,
            sigma: 1.6,
            max_features: 500,
        }
    }
}

/// Gaussian pyramid: `octaves × (n_octave_layers + 3)` images.
struct Pyramid {
    octaves: Vec<Vec<GrayF32>>,
}

/// Assumed blur of the input image (Lowe).
const INIT_SIGMA: f32 = 0.5;

fn build_gaussian_pyramid(base: &GrayF32, params: &SiftParams) -> Pyramid {
    let n_levels = params.n_octave_layers + 3;
    let k = 2.0f32.powf(1.0 / params.n_octave_layers as f32);

    // Per-level incremental sigmas within an octave.
    let mut sig = vec![0.0f32; n_levels];
    sig[0] = params.sigma;
    for (i, s) in sig.iter_mut().enumerate().skip(1) {
        let prev = params.sigma * k.powi(i as i32 - 1);
        let total = prev * k;
        *s = (total * total - prev * prev).sqrt();
    }

    let min_side = 16u32;
    let mut octaves = Vec::new();
    // First image: blur the input up to params.sigma.
    let add = (params.sigma * params.sigma - INIT_SIGMA * INIT_SIGMA).max(0.01).sqrt();
    let mut current = gaussian_blur(base, add).expect("valid sigma"); // taor-lint: allow(panic::expect) — invariant expect: the message states why this cannot fail on valid state
    loop {
        let mut levels = Vec::with_capacity(n_levels);
        levels.push(current.clone());
        for s in sig.iter().take(n_levels).skip(1) {
            let next = gaussian_blur(levels.last().expect("non-empty"), *s).expect("valid sigma"); // taor-lint: allow(panic::expect) — invariant expect: the message states why this cannot fail on valid state
            levels.push(next);
        }
        // Next octave starts from level n (blur 2σ) downsampled by 2.
        let seed = &levels[params.n_octave_layers];
        let (w, h) = seed.dimensions();
        let done = w / 2 < min_side || h / 2 < min_side;
        if !done {
            // taor-lint: allow(panic::expect) — invariant expect: the message states why this cannot fail on valid state
            current = resize_bilinear_f32(seed, w / 2, h / 2).expect("valid dims");
        }
        octaves.push(levels);
        if done {
            break;
        }
    }
    Pyramid { octaves }
}

fn build_dog(pyr: &Pyramid) -> Vec<Vec<GrayF32>> {
    pyr.octaves
        .iter()
        .map(|levels| {
            levels
                .windows(2)
                .map(|pair| {
                    let (w, h) = pair[0].dimensions();
                    let mut d = GrayF32::new(w, h);
                    for ((a, b), out) in
                        pair[1].as_raw().iter().zip(pair[0].as_raw()).zip(d.as_raw_mut())
                    {
                        *out = a - b;
                    }
                    d
                })
                .collect()
        })
        .collect()
}

/// A refined extremum inside one octave.
struct Extremum {
    /// Integer level within the octave's DoG stack.
    level: usize,
    /// Sub-pixel coordinates within the octave image.
    x: f32,
    y: f32,
    /// Sub-level offset.
    ds: f32,
    /// Interpolated |DoG| contrast.
    contrast: f32,
}

/// Quadratic sub-pixel refinement of a candidate extremum. Returns `None`
/// when the offset diverges or the refined contrast/edge tests fail.
#[allow(clippy::too_many_arguments)]
fn refine_extremum(
    dog: &[GrayF32],
    level: usize,
    x: u32,
    y: u32,
    params: &SiftParams,
) -> Option<Extremum> {
    let img_scale = 1.0 / 255.0;
    let (mut lx, mut ly, mut ll) = (x as i64, y as i64, level);
    let (w, h) = dog[0].dimensions();
    let mut offset = (0.0f32, 0.0f32, 0.0f32);

    for _attempt in 0..5 {
        let d = &dog[ll];
        let prev = &dog[ll - 1];
        let next = &dog[ll + 1];
        let v = |im: &GrayF32, dx: i64, dy: i64| im.get_clamped(lx + dx, ly + dy) * img_scale;

        // Gradient and Hessian of the DoG at (lx, ly, ll).
        let dx = (v(d, 1, 0) - v(d, -1, 0)) * 0.5;
        let dy = (v(d, 0, 1) - v(d, 0, -1)) * 0.5;
        let dsig = (v(next, 0, 0) - v(prev, 0, 0)) * 0.5;
        let dxx = v(d, 1, 0) + v(d, -1, 0) - 2.0 * v(d, 0, 0);
        let dyy = v(d, 0, 1) + v(d, 0, -1) - 2.0 * v(d, 0, 0);
        let dss = v(next, 0, 0) + v(prev, 0, 0) - 2.0 * v(d, 0, 0);
        let dxy = (v(d, 1, 1) - v(d, -1, 1) - v(d, 1, -1) + v(d, -1, -1)) * 0.25;
        let dxs = (v(next, 1, 0) - v(next, -1, 0) - v(prev, 1, 0) + v(prev, -1, 0)) * 0.25;
        let dys = (v(next, 0, 1) - v(next, 0, -1) - v(prev, 0, 1) + v(prev, 0, -1)) * 0.25;

        // Solve H * t = -g (3x3 Cramer).
        let det = dxx * (dyy * dss - dys * dys) - dxy * (dxy * dss - dys * dxs)
            + dxs * (dxy * dys - dyy * dxs);
        if det.abs() < 1e-12 {
            return None;
        }
        let inv = 1.0 / det;
        let tx = -inv
            * (dx * (dyy * dss - dys * dys) - dy * (dxy * dss - dys * dxs)
                + dsig * (dxy * dys - dyy * dxs));
        let ty = -inv
            * (dxx * (dy * dss - dsig * dys) - dxy * (dx * dss - dsig * dxs)
                + dxs * (dx * dys - dy * dxs));
        let ts = -inv
            * (dxx * (dyy * dsig - dy * dys) - dxy * (dxy * dsig - dy * dxs)
                + dxs * (dxy * dy - dyy * dx));

        offset = (tx, ty, ts);
        if tx.abs() < 0.5 && ty.abs() < 0.5 && ts.abs() < 0.5 {
            // Converged: contrast test on the interpolated value.
            let contrast = v(d, 0, 0) + 0.5 * (dx * tx + dy * ty + dsig * ts);
            if contrast.abs() * (params.n_octave_layers as f32) < params.contrast_threshold {
                return None;
            }
            // Edge rejection: ratio of principal curvatures.
            let tr = dxx + dyy;
            let det2 = dxx * dyy - dxy * dxy;
            let r = params.edge_threshold;
            if det2 <= 0.0 || tr * tr * r >= (r + 1.0) * (r + 1.0) * det2 {
                return None;
            }
            return Some(Extremum {
                level: ll,
                x: lx as f32 + tx,
                y: ly as f32 + ty,
                ds: ts,
                contrast: contrast.abs(),
            });
        }
        lx += tx.round() as i64;
        ly += ty.round() as i64;
        let nl = ll as i64 + ts.round() as i64;
        if nl < 1
            || nl as usize > dog.len() - 2
            || lx < 1
            || ly < 1
            || lx >= w as i64 - 1
            || ly >= h as i64 - 1
        {
            return None;
        }
        ll = nl as usize;
    }
    let _ = offset;
    None
}

/// Orientation histogram: 36 bins over gradient directions in a Gaussian-
/// weighted window; returns all peaks ≥ 0.8·max with parabolic refinement.
fn orientations(img: &GrayF32, x: f32, y: f32, sigma: f32) -> Vec<f32> {
    const BINS: usize = 36;
    let radius = (3.0 * 1.5 * sigma).round() as i64;
    let weight_denom = 2.0 * (1.5 * sigma) * (1.5 * sigma);
    let mut hist = [0.0f32; BINS];
    let cx = x.round() as i64;
    let cy = y.round() as i64;
    for dy in -radius..=radius {
        for dx in -radius..=radius {
            let px = cx + dx;
            let py = cy + dy;
            let gx = img.get_clamped(px + 1, py) - img.get_clamped(px - 1, py);
            let gy = img.get_clamped(px, py + 1) - img.get_clamped(px, py - 1);
            let mag = (gx * gx + gy * gy).sqrt();
            if mag <= 0.0 {
                continue;
            }
            let theta = gy.atan2(gx).rem_euclid(2.0 * std::f32::consts::PI);
            let w = (-((dx * dx + dy * dy) as f32) / weight_denom).exp();
            let bin = ((theta / (2.0 * std::f32::consts::PI)) * BINS as f32) as usize % BINS;
            hist[bin] += w * mag;
        }
    }
    // Smooth the histogram twice (standard practice).
    for _ in 0..2 {
        let snapshot = hist;
        for i in 0..BINS {
            hist[i] = 0.25 * snapshot[(i + BINS - 1) % BINS]
                + 0.5 * snapshot[i]
                + 0.25 * snapshot[(i + 1) % BINS];
        }
    }
    let max = hist.iter().cloned().fold(0.0f32, f32::max);
    if max <= 0.0 {
        return Vec::new();
    }
    let mut peaks = Vec::new();
    for i in 0..BINS {
        let l = hist[(i + BINS - 1) % BINS];
        let c = hist[i];
        let r = hist[(i + 1) % BINS];
        if c > l && c > r && c >= 0.8 * max {
            // Parabolic interpolation of the peak position.
            let delta = 0.5 * (l - r) / (l - 2.0 * c + r);
            let bin = (i as f32 + delta).rem_euclid(BINS as f32);
            peaks.push(bin / BINS as f32 * 2.0 * std::f32::consts::PI);
        }
    }
    peaks
}

/// 128-d descriptor: 4×4 spatial bins × 8 orientation bins with trilinear
/// interpolation, rotated to the keypoint orientation.
fn compute_descriptor(img: &GrayF32, x: f32, y: f32, angle: f32, scale: f32) -> [f32; 128] {
    const D: usize = 4;
    const B: usize = 8;
    let hist_width = 3.0 * scale;
    let radius = (hist_width * std::f32::consts::SQRT_2 * (D as f32 + 1.0) * 0.5).round() as i64;
    let (sin_t, cos_t) = (-angle).sin_cos(); // rotate gradients into kp frame
    let mut hist = [0.0f32; D * D * B];
    let cx = x.round() as i64;
    let cy = y.round() as i64;

    for dy in -radius..=radius {
        for dx in -radius..=radius {
            // Rotate the offset into the keypoint frame, in units of
            // histogram cells.
            let rx = (dx as f32 * cos_t - dy as f32 * sin_t) / hist_width;
            let ry = (dx as f32 * sin_t + dy as f32 * cos_t) / hist_width;
            let rbin = ry + D as f32 / 2.0 - 0.5;
            let cbin = rx + D as f32 / 2.0 - 0.5;
            if !(-1.0..D as f32).contains(&rbin) || !(-1.0..D as f32).contains(&cbin) {
                continue;
            }
            let px = cx + dx;
            let py = cy + dy;
            let gx = img.get_clamped(px + 1, py) - img.get_clamped(px - 1, py);
            let gy = img.get_clamped(px, py + 1) - img.get_clamped(px, py - 1);
            let mag = (gx * gx + gy * gy).sqrt();
            if mag <= 0.0 {
                continue;
            }
            let theta = (gy.atan2(gx) - angle).rem_euclid(2.0 * std::f32::consts::PI);
            let obin = theta / (2.0 * std::f32::consts::PI) * B as f32;
            let w = (-(rx * rx + ry * ry) / (0.5 * (D as f32) * (D as f32))).exp();
            let contrib = w * mag;

            // Trilinear distribution.
            let r0 = rbin.floor();
            let c0 = cbin.floor();
            let o0 = obin.floor();
            let dr = rbin - r0;
            let dc = cbin - c0;
            let dob = obin - o0;
            for (ri, rw) in [(r0 as i64, 1.0 - dr), (r0 as i64 + 1, dr)] {
                if ri < 0 || ri >= D as i64 {
                    continue;
                }
                for (ci, cw) in [(c0 as i64, 1.0 - dc), (c0 as i64 + 1, dc)] {
                    if ci < 0 || ci >= D as i64 {
                        continue;
                    }
                    for (oi, ow) in [(o0 as i64, 1.0 - dob), (o0 as i64 + 1, dob)] {
                        let ob = (oi.rem_euclid(B as i64)) as usize;
                        hist[(ri as usize * D + ci as usize) * B + ob] += contrib * rw * cw * ow;
                    }
                }
            }
        }
    }

    // Normalise, clamp at 0.2, renormalise (Lowe's illumination robustness).
    let mut desc = hist;
    let norm: f32 = desc.iter().map(|v| v * v).sum::<f32>().sqrt();
    if norm > 1e-12 {
        for v in &mut desc {
            *v = (*v / norm).min(0.2);
        }
    }
    let norm2: f32 = desc.iter().map(|v| v * v).sum::<f32>().sqrt();
    if norm2 > 1e-12 {
        for v in &mut desc {
            *v /= norm2;
        }
    }
    desc
}

/// Detect SIFT keypoints and compute 128-d descriptors.
pub fn sift_detect_and_compute(
    img: &GrayImage,
    params: &SiftParams,
) -> Result<(Vec<KeyPoint>, FloatDescriptors)> {
    const MIN_SIDE: u32 = 32;
    if img.width() < MIN_SIDE || img.height() < MIN_SIDE {
        return Err(FeatureError::ImageTooSmall {
            width: img.width(),
            height: img.height(),
            min: MIN_SIDE,
        });
    }
    if params.n_octave_layers == 0 || params.n_octave_layers > 6 {
        return Err(FeatureError::InvalidParameter {
            name: "n_octave_layers",
            msg: format!("{} not in 1..=6", params.n_octave_layers),
        });
    }

    let base = img.to_f32();
    let pyr = build_gaussian_pyramid(&base, params);
    let dog = build_dog(&pyr);
    let k = 2.0f32.powf(1.0 / params.n_octave_layers as f32);

    let mut keypoints: Vec<(KeyPoint, usize, usize, f32, f32)> = Vec::new();
    // (kp, octave_idx, level, x_in_octave, y_in_octave)

    let prelim_thresh = 0.5 * params.contrast_threshold / params.n_octave_layers as f32 * 255.0;
    for (oct_idx, stack) in dog.iter().enumerate() {
        let (w, h) = stack[0].dimensions();
        for level in 1..stack.len() - 1 {
            for y in 1..h - 1 {
                for x in 1..w - 1 {
                    let v = stack[level].get(x, y);
                    if v.abs() < prelim_thresh {
                        continue;
                    }
                    // 3x3x3 extremum test.
                    let mut is_max = true;
                    let mut is_min = true;
                    'ext: for dl in 0..3usize {
                        let s = &stack[level + dl - 1];
                        for dy in -1i64..=1 {
                            for dx in -1i64..=1 {
                                if (dl, dx, dy) == (1, 0, 0) {
                                    continue;
                                }
                                let n = s.get_clamped(x as i64 + dx, y as i64 + dy);
                                if n >= v {
                                    is_max = false;
                                }
                                if n <= v {
                                    is_min = false;
                                }
                                if !is_max && !is_min {
                                    break 'ext;
                                }
                            }
                        }
                    }
                    if !is_max && !is_min {
                        continue;
                    }
                    let Some(ext) = refine_extremum(stack, level, x, y, params) else {
                        continue;
                    };
                    let scale =
                        params.sigma * k.powf(ext.level as f32 + ext.ds) * (1 << oct_idx) as f32;
                    let kp = KeyPoint {
                        x: ext.x * (1 << oct_idx) as f32,
                        y: ext.y * (1 << oct_idx) as f32,
                        size: scale * 2.0,
                        angle: 0.0,
                        response: ext.contrast,
                        octave: oct_idx as i32,
                    };
                    keypoints.push((kp, oct_idx, ext.level, ext.x, ext.y));
                }
            }
        }
    }

    keypoints.sort_by(|a, b| taor_imgproc::cmp::nan_last_desc_f32(a.0.response, b.0.response));
    if params.max_features > 0 {
        keypoints.truncate(params.max_features);
    }

    let mut out_kps = Vec::new();
    let mut descriptors = FloatDescriptors::new(128);
    for (kp, oct_idx, level, ox, oy) in keypoints {
        // Gradients come from the Gaussian image at the keypoint's level.
        let gimg = &pyr.octaves[oct_idx][level];
        let local_scale = params.sigma * k.powi(level as i32);
        for angle in orientations(gimg, ox, oy, local_scale) {
            let desc = compute_descriptor(gimg, ox, oy, angle, local_scale);
            out_kps.push(KeyPoint { angle, ..kp });
            descriptors.push(&desc);
        }
    }
    Ok((out_kps, descriptors))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corner_card() -> GrayImage {
        use taor_imgproc::draw::{p2, Canvas};
        let mut c = Canvas::new(128, 128, [20, 20, 20]);
        c.fill_rot_rect(50.0, 46.0, 44.0, 30.0, 0.4, [230, 230, 230]);
        c.fill_polygon(&[p2(80.0, 90.0), p2(114.0, 96.0), p2(88.0, 118.0)], [160, 160, 160]);
        c.fill_ellipse(30.0, 96.0, 11.0, 7.0, [200, 200, 200]);
        taor_imgproc::color::rgb_to_gray(c.image())
    }

    #[test]
    fn detects_features_on_structured_image() {
        let img = corner_card();
        let (kps, descs) = sift_detect_and_compute(&img, &SiftParams::default()).unwrap();
        assert!(!kps.is_empty(), "expected SIFT keypoints");
        assert_eq!(kps.len(), descs.len());
        assert_eq!(descs.width(), 128);
    }

    #[test]
    fn descriptors_are_unit_norm_and_clamped() {
        let img = corner_card();
        let (_, descs) = sift_detect_and_compute(&img, &SiftParams::default()).unwrap();
        for d in descs.iter() {
            let n: f32 = d.iter().map(|v| v * v).sum::<f32>().sqrt();
            assert!((n - 1.0).abs() < 1e-3, "norm {n}");
            // Values are clamped at 0.2 *before* the final renormalisation,
            // which can push them back up (same as OpenCV); 0.5 is a loose
            // post-renormalisation ceiling.
            for &v in d {
                assert!((0.0..=0.5).contains(&v), "bin value {v} out of clamped range");
            }
        }
    }

    #[test]
    fn flat_image_has_no_features() {
        let img = GrayImage::filled(64, 64, [77]);
        let (kps, _) = sift_detect_and_compute(&img, &SiftParams::default()).unwrap();
        assert!(kps.is_empty());
    }

    #[test]
    fn small_image_rejected() {
        let img = GrayImage::new(16, 16);
        assert!(matches!(
            sift_detect_and_compute(&img, &SiftParams::default()),
            Err(FeatureError::ImageTooSmall { .. })
        ));
    }

    #[test]
    fn invalid_layers_rejected() {
        let img = corner_card();
        let p = SiftParams { n_octave_layers: 0, ..Default::default() };
        assert!(sift_detect_and_compute(&img, &p).is_err());
    }

    #[test]
    fn higher_contrast_threshold_prunes() {
        let img = corner_card();
        let lo = SiftParams { contrast_threshold: 0.01, ..Default::default() };
        let hi = SiftParams { contrast_threshold: 0.2, ..Default::default() };
        let (k_lo, _) = sift_detect_and_compute(&img, &lo).unwrap();
        let (k_hi, _) = sift_detect_and_compute(&img, &hi).unwrap();
        assert!(k_lo.len() >= k_hi.len());
    }

    #[test]
    fn deterministic() {
        let img = corner_card();
        let (k1, d1) = sift_detect_and_compute(&img, &SiftParams::default()).unwrap();
        let (k2, d2) = sift_detect_and_compute(&img, &SiftParams::default()).unwrap();
        assert_eq!(k1.len(), k2.len());
        assert_eq!(d1, d2);
    }

    #[test]
    fn translated_image_matches_itself() {
        use crate::matcher::{knn_match_float, ratio_test_matches};
        let a = corner_card();
        // Translate by cropping two overlapping windows.
        let big = {
            use taor_imgproc::draw::Canvas;
            let mut c = Canvas::new(160, 160, [20, 20, 20]);
            c.fill_rot_rect(70.0, 66.0, 44.0, 30.0, 0.4, [230, 230, 230]);
            c.fill_ellipse(50.0, 116.0, 11.0, 7.0, [200, 200, 200]);
            taor_imgproc::color::rgb_to_gray(c.image())
        };
        let w1 = big.crop(taor_imgproc::Rect::new(0, 0, 128, 128)).unwrap();
        let w2 = big.crop(taor_imgproc::Rect::new(12, 12, 128, 128)).unwrap();
        let p = SiftParams::default();
        let (_, d1) = sift_detect_and_compute(&w1, &p).unwrap();
        let (_, d2) = sift_detect_and_compute(&w2, &p).unwrap();
        let _ = a;
        if d1.is_empty() || d2.is_empty() {
            panic!("expected features in both windows");
        }
        let m = knn_match_float(&d1, &d2).unwrap();
        let good = ratio_test_matches(&m, 0.75);
        assert!(
            !good.is_empty(),
            "translated views of the same scene should produce ratio-test survivors"
        );
    }
}
