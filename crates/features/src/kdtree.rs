// taor-lint: allow(panic::index) — dense numeric kernel: indices are derived from dimensions validated at the public boundary and bounded by the enclosing loops.
//! A kd-tree approximate nearest-neighbour index for float descriptors.
//!
//! Stands in for FLANN: the paper notes "Using FLANN-based matching for
//! optimised nearest neighbour search did not lead to any performance
//! gains, compared to the brute-force approach, most likely due to the
//! fairly limited size of the input datasets" (§3.3). The `matching` bench
//! in `taor-bench` reproduces that crossover.

use crate::error::{FeatureError, Result};
use crate::keypoint::{l2_sq, FloatDescriptors};
use crate::matcher::{DMatch, RatioMatch};

#[derive(Debug)]
enum Node {
    Leaf {
        /// Indices into the descriptor matrix.
        items: Vec<usize>,
    },
    Split {
        dim: usize,
        value: f32,
        left: Box<Node>,
        right: Box<Node>,
    },
}

/// A neighbour as `(descriptor index, squared-L2 distance)`.
pub type Neighbour = (usize, f32);

/// 2-NN query result: the best neighbour plus, when one exists, the
/// second best (`None` for a single-descriptor index).
pub type Knn2 = Option<(usize, f32, Option<Neighbour>)>;

/// kd-tree over a borrowed descriptor matrix.
#[derive(Debug)]
pub struct KdTree<'a> {
    descs: &'a FloatDescriptors,
    root: Node,
    /// Maximum leaves visited per query (the FLANN "checks" knob).
    pub checks: usize,
}

const LEAF_SIZE: usize = 8;

impl<'a> KdTree<'a> {
    /// Build an index over `descs`. `checks` bounds the number of leaves
    /// inspected per query; larger = more exact, slower.
    pub fn build(descs: &'a FloatDescriptors, checks: usize) -> Result<Self> {
        if checks == 0 {
            return Err(FeatureError::InvalidParameter {
                name: "checks",
                msg: "must be >= 1".into(),
            });
        }
        let items: Vec<usize> = (0..descs.len()).collect();
        let root = Self::build_node(descs, items);
        Ok(KdTree { descs, root, checks })
    }

    fn build_node(descs: &FloatDescriptors, mut items: Vec<usize>) -> Node {
        if items.len() <= LEAF_SIZE || descs.width() == 0 {
            return Node::Leaf { items };
        }
        // Split on the dimension of largest variance, at the median.
        let w = descs.width();
        let n = items.len() as f32;
        let mut best_dim = 0;
        let mut best_var = -1.0f32;
        for d in 0..w {
            let mean: f32 = items.iter().map(|&i| descs.row(i)[d]).sum::<f32>() / n;
            let var: f32 = items.iter().map(|&i| (descs.row(i)[d] - mean).powi(2)).sum::<f32>() / n;
            if var > best_var {
                best_var = var;
                best_dim = d;
            }
        }
        if best_var <= 0.0 {
            // All points identical along every axis: cannot split.
            return Node::Leaf { items };
        }
        items.sort_by(|&a, &b| {
            taor_imgproc::cmp::nan_last_f32(descs.row(a)[best_dim], descs.row(b)[best_dim])
        });
        let mid = items.len() / 2;
        let value = descs.row(items[mid])[best_dim];
        let right_items = items.split_off(mid);
        if items.is_empty() || right_items.is_empty() {
            let mut all = items;
            all.extend(right_items);
            return Node::Leaf { items: all };
        }
        Node::Split {
            dim: best_dim,
            value,
            left: Box::new(Self::build_node(descs, items)),
            right: Box::new(Self::build_node(descs, right_items)),
        }
    }

    /// Approximate 2-NN query: best and second-best indices with squared-L2
    /// distances. Returns `None` when the index is empty.
    ///
    /// NaN quarantine matches the naive matcher oracle: updates use
    /// strict `<` against an `(0, ∞)` placeholder, so a NaN distance can
    /// never become (or poison) the best slot, an all-NaN gallery returns
    /// the placeholder itself, and a non-finite second neighbour is
    /// reported as `None`.
    pub fn knn2(&self, query: &[f32]) -> Knn2 {
        if self.descs.is_empty() {
            return None;
        }
        let mut best: (usize, f32) = (0, f32::INFINITY);
        let mut second: Option<(usize, f32)> = None;
        let mut visited = 0usize;
        // Depth-first with a priority backlog of far branches.
        let mut backlog: Vec<(f32, &Node)> = vec![(0.0, &self.root)];
        while let Some((bound, mut node)) = backlog.pop() {
            if visited >= self.checks {
                break;
            }
            if bound > best.1 && second.is_some() {
                continue;
            }
            loop {
                match node {
                    Node::Leaf { items } => {
                        visited += 1;
                        for &i in items {
                            let d = l2_sq(query, self.descs.row(i));
                            if d < best.1 {
                                second = Some(best);
                                best = (i, d);
                            } else if second.is_none_or(|(_, sd)| d < sd) {
                                second = Some((i, d));
                            }
                        }
                        break;
                    }
                    Node::Split { dim, value, left, right } => {
                        let diff = query[*dim] - value;
                        let (near, far) = if diff < 0.0 { (left, right) } else { (right, left) };
                        backlog.push((diff * diff, far));
                        node = near;
                    }
                }
            }
        }
        // The placeholder must never leak out as `second`.
        let second = second.filter(|(_, sd)| sd.is_finite());
        Some((best.0, best.1, second))
    }

    /// kNN-match every query descriptor against the index, mirroring
    /// [`crate::matcher::knn_match_float`]'s output shape: empty output
    /// for an empty side, otherwise exactly one [`RatioMatch`] per query
    /// row (queries with no finite neighbour get the oracle's `(0, ∞)`
    /// placeholder, never a dropped row).
    pub fn knn_match(&self, query: &FloatDescriptors) -> Result<Vec<RatioMatch>> {
        if query.is_empty() || self.descs.is_empty() {
            return Ok(Vec::new());
        }
        if query.width() != self.descs.width() {
            return Err(FeatureError::DescriptorWidthMismatch {
                left: query.width(),
                right: self.descs.width(),
            });
        }
        let mut out = Vec::with_capacity(query.len());
        for qi in 0..query.len() {
            // `knn2` is `None` only for an empty index, ruled out above.
            let (bi, bd, sec) = self.knn2(query.row(qi)).unwrap_or((0, f32::INFINITY, None));
            out.push(RatioMatch {
                best: DMatch { query_idx: qi, train_idx: bi, distance: bd },
                second: sec.map(|(si, sd)| DMatch { query_idx: qi, train_idx: si, distance: sd }),
            });
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matcher::knn_match_float;
    use rand::{Rng, SeedableRng};

    fn random_descs(n: usize, w: usize, seed: u64) -> FloatDescriptors {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let mut d = FloatDescriptors::new(w);
        let mut row = vec![0.0f32; w];
        for _ in 0..n {
            for v in &mut row {
                *v = rng.gen_range(-1.0..1.0);
            }
            d.push(&row);
        }
        d
    }

    #[test]
    fn exact_when_checks_large() {
        let train = random_descs(200, 8, 1);
        let query = random_descs(20, 8, 2);
        let tree = KdTree::build(&train, usize::MAX).unwrap();
        let approx = tree.knn_match(&query).unwrap();
        let exact = knn_match_float(&query, &train).unwrap();
        for (a, e) in approx.iter().zip(&exact) {
            assert_eq!(a.best.train_idx, e.best.train_idx);
            assert!((a.best.distance - e.best.distance).abs() < 1e-6);
        }
    }

    #[test]
    fn approximate_recall_reasonable_with_few_checks() {
        let train = random_descs(500, 16, 3);
        let query = random_descs(50, 16, 4);
        let tree = KdTree::build(&train, 32).unwrap();
        let approx = tree.knn_match(&query).unwrap();
        let exact = knn_match_float(&query, &train).unwrap();
        let hits =
            approx.iter().zip(&exact).filter(|(a, e)| a.best.train_idx == e.best.train_idx).count();
        // kd-trees degrade in high dimensions (the reason FLANN uses
        // randomised forests); 60 % exact-NN recall at 32 checks out of ~64
        // leaves is the expected regime.
        assert!(hits >= 30, "recall too low: {hits}/50");
    }

    #[test]
    fn empty_and_degenerate_inputs() {
        let train = FloatDescriptors::new(4);
        let tree = KdTree::build(&train, 4).unwrap();
        assert!(tree.knn2(&[0.0; 4]).is_none());
        assert!(KdTree::build(&train, 0).is_err());
    }

    #[test]
    fn identical_points_do_not_recurse_forever() {
        let mut train = FloatDescriptors::new(2);
        for _ in 0..100 {
            train.push(&[1.0, 1.0]);
        }
        let tree = KdTree::build(&train, 8).unwrap();
        let (bi, bd, _) = tree.knn2(&[1.0, 1.0]).unwrap();
        assert!(bi < 100);
        assert_eq!(bd, 0.0);
    }

    #[test]
    fn width_mismatch_rejected() {
        let train = random_descs(10, 4, 5);
        let query = random_descs(2, 8, 6);
        let tree = KdTree::build(&train, 8).unwrap();
        assert!(tree.knn_match(&query).is_err());
    }

    #[test]
    fn nan_rows_never_poison_best() {
        // A NaN row visited first used to lodge itself in `best` forever
        // (every later `d < NaN` comparison is false). The oracle's
        // quarantine: NaN never becomes best or a reported second.
        let mut train = FloatDescriptors::new(2);
        train.push(&[f32::NAN, f32::NAN]);
        train.push(&[1.0, 1.0]);
        train.push(&[f32::NAN, 0.0]);
        train.push(&[4.0, 4.0]);
        let tree = KdTree::build(&train, usize::MAX).unwrap();
        let query = float_set_kd(&[&[1.0, 1.1], &[4.0, 4.0]]);
        let got = tree.knn_match(&query).unwrap();
        let want = crate::matcher::knn_match_float_naive(&query, &train).unwrap();
        assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(g.best.train_idx, w.best.train_idx);
            assert_eq!(g.best.distance, w.best.distance);
            assert_eq!(g.second.map(|s| s.distance), w.second.map(|s| s.distance));
        }
    }

    #[test]
    fn all_nan_gallery_yields_placeholder_row() {
        let mut train = FloatDescriptors::new(2);
        train.push(&[f32::NAN, f32::NAN]);
        train.push(&[f32::NAN, 1.0]);
        let tree = KdTree::build(&train, usize::MAX).unwrap();
        let query = float_set_kd(&[&[0.0, 0.0]]);
        let got = tree.knn_match(&query).unwrap();
        let want = crate::matcher::knn_match_float_naive(&query, &train).unwrap();
        assert_eq!(got.len(), 1, "one RatioMatch per query, never a dropped row");
        assert_eq!(got[0].best.train_idx, want[0].best.train_idx);
        assert!(got[0].best.distance.is_infinite());
        assert!(got[0].second.is_none());
    }

    #[test]
    fn nan_query_gets_placeholder_not_a_dropped_row() {
        let train = random_descs(20, 2, 9);
        let tree = KdTree::build(&train, usize::MAX).unwrap();
        let query = float_set_kd(&[&[f32::NAN, 0.0], &[0.0, 0.0]]);
        let got = tree.knn_match(&query).unwrap();
        assert_eq!(got.len(), 2, "row count must match the query count");
        assert!(got[0].best.distance.is_infinite());
        assert!(got[0].second.is_none());
        assert!(got[1].best.distance.is_finite());
    }

    #[test]
    fn k_exceeding_gallery_size_reports_no_second() {
        // A single-row index: `k = 2 > n = 1`, second must be None — the
        // oracle filters its placeholder out the same way.
        let train = float_set_kd(&[&[3.0, 3.0]]);
        let tree = KdTree::build(&train, usize::MAX).unwrap();
        let query = float_set_kd(&[&[3.0, 3.5]]);
        let got = tree.knn_match(&query).unwrap();
        let want = crate::matcher::knn_match_float_naive(&query, &train).unwrap();
        assert_eq!(got[0].best.train_idx, 0);
        assert!(got[0].second.is_none());
        assert_eq!(want[0].second, None);
    }

    #[test]
    fn empty_gallery_yields_empty_output() {
        let train = FloatDescriptors::new(3);
        let tree = KdTree::build(&train, 4).unwrap();
        let query = random_descs(5, 3, 10);
        assert!(tree.knn_match(&query).unwrap().is_empty());
    }

    fn float_set_kd(rows: &[&[f32]]) -> FloatDescriptors {
        let mut d = FloatDescriptors::new(rows[0].len());
        for r in rows {
            d.push(r);
        }
        d
    }
}
