// taor-lint: allow(panic::index) — dense numeric kernel: indices are derived from dimensions validated at the public boundary and bounded by the enclosing loops.
//! RANSAC geometric verification of descriptor matches.
//!
//! Lowe's original pipeline (and every production matcher since) follows
//! the ratio test with a geometric consistency check: surviving matches
//! vote for a similarity transform (translation + rotation + uniform
//! scale) and only inliers of the best transform count. This module adds
//! that stage as an ablation for the paper's §3.3 pipeline — the repro
//! harness can compare raw ratio-test voting against geometrically
//! verified voting.

use crate::error::{FeatureError, Result};
use crate::keypoint::KeyPoint;
use crate::matcher::DMatch;
use rand::{Rng, SeedableRng};

/// A 2-D similarity transform `p' = s·R·p + t`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Similarity {
    /// `s·cos θ`
    pub a: f32,
    /// `s·sin θ`
    pub b: f32,
    pub tx: f32,
    pub ty: f32,
}

impl Similarity {
    /// Identity transform.
    pub fn identity() -> Self {
        Similarity { a: 1.0, b: 0.0, tx: 0.0, ty: 0.0 }
    }

    /// Estimate from two point correspondences (the minimal sample).
    /// Returns `None` for degenerate (coincident) source points.
    pub fn from_two_points(
        p1: (f32, f32),
        p2: (f32, f32),
        q1: (f32, f32),
        q2: (f32, f32),
    ) -> Option<Similarity> {
        let dx = p2.0 - p1.0;
        let dy = p2.1 - p1.1;
        let denom = dx * dx + dy * dy;
        if denom < 1e-9 {
            return None;
        }
        let ex = q2.0 - q1.0;
        let ey = q2.1 - q1.1;
        // Solve a + ib = (ex + i ey) / (dx + i dy).
        let a = (ex * dx + ey * dy) / denom;
        let b = (ey * dx - ex * dy) / denom;
        let tx = q1.0 - (a * p1.0 - b * p1.1);
        let ty = q1.1 - (b * p1.0 + a * p1.1);
        Some(Similarity { a, b, tx, ty })
    }

    /// Apply to a point.
    pub fn apply(&self, p: (f32, f32)) -> (f32, f32) {
        (self.a * p.0 - self.b * p.1 + self.tx, self.b * p.0 + self.a * p.1 + self.ty)
    }

    /// The uniform scale factor.
    pub fn scale(&self) -> f32 {
        (self.a * self.a + self.b * self.b).sqrt()
    }

    /// Rotation angle in radians.
    pub fn angle(&self) -> f32 {
        self.b.atan2(self.a)
    }
}

/// RANSAC parameters.
#[derive(Debug, Clone)]
pub struct RansacParams {
    /// Number of minimal-sample iterations.
    pub iterations: usize,
    /// Inlier reprojection threshold in pixels.
    pub inlier_threshold: f32,
    /// Reject transforms whose scale falls outside `[1/max, max]`.
    pub max_scale: f32,
    /// RNG seed (deterministic verification).
    pub seed: u64,
}

impl Default for RansacParams {
    fn default() -> Self {
        RansacParams { iterations: 200, inlier_threshold: 5.0, max_scale: 4.0, seed: 0x7A45 }
    }
}

/// Result of a verification run.
#[derive(Debug, Clone)]
pub struct Verification {
    /// The best transform found (identity when no model beat 2 inliers).
    pub transform: Similarity,
    /// Indices into the input `matches` slice that are inliers.
    pub inliers: Vec<usize>,
}

/// Verify matches between two keypoint sets with RANSAC over a
/// similarity model. `matches[i]` pairs `query_kps[m.query_idx]` with
/// `train_kps[m.train_idx]`.
///
/// Fewer than two matches cannot constrain the model; they verify to an
/// empty inlier set rather than an error.
pub fn verify_matches(
    query_kps: &[KeyPoint],
    train_kps: &[KeyPoint],
    matches: &[DMatch],
    params: &RansacParams,
) -> Result<Verification> {
    if params.iterations == 0 {
        return Err(FeatureError::InvalidParameter {
            name: "iterations",
            msg: "must be >= 1".into(),
        });
    }
    for m in matches {
        if m.query_idx >= query_kps.len() || m.train_idx >= train_kps.len() {
            return Err(FeatureError::InvalidParameter {
                name: "matches",
                msg: format!(
                    "match ({}, {}) out of keypoint range ({}, {})",
                    m.query_idx,
                    m.train_idx,
                    query_kps.len(),
                    train_kps.len()
                ),
            });
        }
    }
    if matches.len() < 2 {
        return Ok(Verification { transform: Similarity::identity(), inliers: Vec::new() });
    }

    let src: Vec<(f32, f32)> =
        matches.iter().map(|m| (query_kps[m.query_idx].x, query_kps[m.query_idx].y)).collect();
    let dst: Vec<(f32, f32)> =
        matches.iter().map(|m| (train_kps[m.train_idx].x, train_kps[m.train_idx].y)).collect();

    let mut rng = rand::rngs::SmallRng::seed_from_u64(params.seed);
    let mut best_inliers: Vec<usize> = Vec::new();
    let mut best_transform = Similarity::identity();
    let thr_sq = params.inlier_threshold * params.inlier_threshold;

    for _ in 0..params.iterations {
        let i = rng.gen_range(0..matches.len());
        let mut j = rng.gen_range(0..matches.len());
        if matches.len() > 1 {
            while j == i {
                j = rng.gen_range(0..matches.len());
            }
        }
        let Some(t) = Similarity::from_two_points(src[i], src[j], dst[i], dst[j]) else {
            continue;
        };
        let s = t.scale();
        if !(1.0 / params.max_scale..=params.max_scale).contains(&s) {
            continue;
        }
        let inliers: Vec<usize> = (0..matches.len())
            .filter(|&k| {
                let p = t.apply(src[k]);
                let dx = p.0 - dst[k].0;
                let dy = p.1 - dst[k].1;
                dx * dx + dy * dy <= thr_sq
            })
            .collect();
        if inliers.len() > best_inliers.len() {
            best_inliers = inliers;
            best_transform = t;
        }
    }
    // A 2-point model trivially explains its own sample; require a third
    // supporting match before calling anything an inlier set.
    if best_inliers.len() < 3 {
        best_inliers.clear();
        best_transform = Similarity::identity();
    }
    Ok(Verification { transform: best_transform, inliers: best_inliers })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kp(x: f32, y: f32) -> KeyPoint {
        KeyPoint::at(x, y)
    }

    /// Build a correspondence set under a known transform plus outliers.
    fn scenario(
        t: &Similarity,
        n_in: usize,
        n_out: usize,
    ) -> (Vec<KeyPoint>, Vec<KeyPoint>, Vec<DMatch>) {
        let mut q = Vec::new();
        let mut r = Vec::new();
        let mut matches = Vec::new();
        for i in 0..n_in {
            let p = (10.0 + (i * 13 % 50) as f32, 8.0 + (i * 29 % 40) as f32);
            let m = t.apply(p);
            q.push(kp(p.0, p.1));
            r.push(kp(m.0, m.1));
            matches.push(DMatch { query_idx: i, train_idx: i, distance: 0.1 });
        }
        for i in 0..n_out {
            let idx = n_in + i;
            q.push(kp((i * 37 % 60) as f32, (i * 53 % 60) as f32));
            r.push(kp((i * 71 % 60) as f32 + 30.0, (i * 17 % 60) as f32 + 30.0));
            matches.push(DMatch { query_idx: idx, train_idx: idx, distance: 0.2 });
        }
        (q, r, matches)
    }

    #[test]
    fn recovers_translation() {
        let t = Similarity { a: 1.0, b: 0.0, tx: 12.0, ty: -7.0 };
        let (q, r, m) = scenario(&t, 12, 6);
        let v = verify_matches(&q, &r, &m, &RansacParams::default()).unwrap();
        assert_eq!(v.inliers.len(), 12, "all true inliers found");
        assert!((v.transform.tx - 12.0).abs() < 0.5);
        assert!((v.transform.ty + 7.0).abs() < 0.5);
        assert!((v.transform.scale() - 1.0).abs() < 0.01);
    }

    #[test]
    fn recovers_rotation_and_scale() {
        let s = 1.5f32;
        let th = 0.5f32;
        let t = Similarity { a: s * th.cos(), b: s * th.sin(), tx: 3.0, ty: 4.0 };
        let (q, r, m) = scenario(&t, 10, 5);
        let v = verify_matches(&q, &r, &m, &RansacParams::default()).unwrap();
        assert!(v.inliers.len() >= 10);
        assert!((v.transform.scale() - 1.5).abs() < 0.05);
        assert!((v.transform.angle() - 0.5).abs() < 0.05);
    }

    #[test]
    fn pure_outliers_give_empty_inliers() {
        let t = Similarity::identity();
        let (q, r, mut m) = scenario(&t, 0, 8);
        // Shuffle correspondences so nothing is consistent.
        m.reverse();
        let v = verify_matches(&q, &r, &m, &RansacParams::default()).unwrap();
        assert!(v.inliers.len() <= 3, "random matches produced {} inliers", v.inliers.len());
    }

    #[test]
    fn too_few_matches_is_empty_not_error() {
        let q = vec![kp(0.0, 0.0)];
        let r = vec![kp(1.0, 1.0)];
        let m = vec![DMatch { query_idx: 0, train_idx: 0, distance: 0.0 }];
        let v = verify_matches(&q, &r, &m, &RansacParams::default()).unwrap();
        assert!(v.inliers.is_empty());
    }

    #[test]
    fn out_of_range_match_is_error() {
        let q = vec![kp(0.0, 0.0)];
        let r = vec![kp(1.0, 1.0)];
        let m = vec![DMatch { query_idx: 5, train_idx: 0, distance: 0.0 }];
        assert!(verify_matches(&q, &r, &m, &RansacParams::default()).is_err());
    }

    #[test]
    fn extreme_scale_models_rejected() {
        // Correspondences implying a 10x blow-up must be filtered by
        // max_scale.
        let t = Similarity { a: 10.0, b: 0.0, tx: 0.0, ty: 0.0 };
        let (q, r, m) = scenario(&t, 8, 0);
        let v = verify_matches(&q, &r, &m, &RansacParams::default()).unwrap();
        assert!(v.inliers.is_empty(), "scale-10 model should be rejected");
    }

    #[test]
    fn deterministic_per_seed() {
        let t = Similarity { a: 1.0, b: 0.0, tx: 5.0, ty: 5.0 };
        let (q, r, m) = scenario(&t, 10, 10);
        let v1 = verify_matches(&q, &r, &m, &RansacParams::default()).unwrap();
        let v2 = verify_matches(&q, &r, &m, &RansacParams::default()).unwrap();
        assert_eq!(v1.inliers, v2.inliers);
    }

    #[test]
    fn similarity_two_point_roundtrip() {
        let t = Similarity { a: 0.8, b: 0.6, tx: -3.0, ty: 2.0 };
        let p1 = (1.0, 2.0);
        let p2 = (7.0, -4.0);
        let est =
            Similarity::from_two_points(p1, p2, t.apply(p1), t.apply(p2)).expect("non-degenerate");
        for p in [(0.0, 0.0), (5.0, 5.0), (-2.0, 9.0)] {
            let a = t.apply(p);
            let b = est.apply(p);
            assert!((a.0 - b.0).abs() < 1e-4 && (a.1 - b.1).abs() < 1e-4);
        }
        assert!(Similarity::from_two_points(p1, p1, (0.0, 0.0), (1.0, 1.0)).is_none());
    }
}
