// taor-lint: allow(panic::index) — dense numeric kernel: indices are derived from dimensions validated at the public boundary and bounded by the enclosing loops.
//! Keypoints and descriptor containers.

/// A detected interest point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KeyPoint {
    /// Sub-pixel x coordinate in the original image.
    pub x: f32,
    /// Sub-pixel y coordinate in the original image.
    pub y: f32,
    /// Characteristic scale (diameter-ish, detector-specific units).
    pub size: f32,
    /// Dominant orientation in radians, `[0, 2π)`; `0.0` when undefined.
    pub angle: f32,
    /// Detector response (higher = stronger).
    pub response: f32,
    /// Octave / pyramid level the point was detected in.
    pub octave: i32,
}

impl KeyPoint {
    /// A keypoint at `(x, y)` with defaults elsewhere.
    pub fn at(x: f32, y: f32) -> Self {
        KeyPoint { x, y, size: 1.0, angle: 0.0, response: 0.0, octave: 0 }
    }
}

/// A row-major matrix of float descriptors: `len` rows × `width` columns.
///
/// Caches per-row squared norms (the `‖t‖²` term of the GEMM matcher's
/// `‖q−t‖² = ‖q‖² + ‖t‖² − 2q·t` expansion) lazily on first use, so a
/// reference index computes them once per build, not once per query
/// image. The cache is invalidated by `push` and ignored by equality.
#[derive(Debug, Clone, Default)]
pub struct FloatDescriptors {
    width: usize,
    data: Vec<f32>,
    norms: std::sync::OnceLock<Vec<f32>>,
}

impl PartialEq for FloatDescriptors {
    fn eq(&self, other: &Self) -> bool {
        self.width == other.width && self.data == other.data
    }
}

impl FloatDescriptors {
    /// Create an empty container for descriptors of the given width.
    pub fn new(width: usize) -> Self {
        FloatDescriptors { width, data: Vec::new(), norms: std::sync::OnceLock::new() }
    }

    /// Append one descriptor; `desc.len()` must equal the width.
    pub fn push(&mut self, desc: &[f32]) {
        assert_eq!(desc.len(), self.width, "descriptor width mismatch");
        self.data.extend_from_slice(desc);
        self.norms = std::sync::OnceLock::new();
    }

    /// Number of descriptors.
    pub fn len(&self) -> usize {
        self.data.len().checked_div(self.width).unwrap_or(0)
    }

    /// Whether the container is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Descriptor width (dimensionality).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Borrow descriptor `i`.
    pub fn row(&self, i: usize) -> &[f32] {
        &self.data[i * self.width..(i + 1) * self.width]
    }

    /// Iterate over all descriptors.
    pub fn iter(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.width.max(1))
    }

    /// The whole matrix as one contiguous row-major slice (GEMM operand).
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Per-row squared L2 norms, computed once and cached (thread-safe).
    pub fn norms_sq(&self) -> &[f32] {
        self.norms.get_or_init(|| self.iter().map(|row| row.iter().map(|&v| v * v).sum()).collect())
    }
}

/// A row-major matrix of binary descriptors, each `width_bytes` bytes
/// (ORB uses 32 bytes = 256 bits).
///
/// Caches a zero-padded `u64` repacking of every row (lazily, like the
/// float norms) so the Hamming matcher runs word-wide `count_ones`
/// instead of byte-wide: equal padding XORs to zero, so distances are
/// unchanged. Invalidated by `push`, ignored by equality.
#[derive(Debug, Clone, Default)]
pub struct BinaryDescriptors {
    width_bytes: usize,
    data: Vec<u8>,
    words: std::sync::OnceLock<Vec<u64>>,
}

impl PartialEq for BinaryDescriptors {
    fn eq(&self, other: &Self) -> bool {
        self.width_bytes == other.width_bytes && self.data == other.data
    }
}

impl BinaryDescriptors {
    /// Create an empty container for descriptors of the given byte width.
    pub fn new(width_bytes: usize) -> Self {
        BinaryDescriptors { width_bytes, data: Vec::new(), words: std::sync::OnceLock::new() }
    }

    /// Append one descriptor; `desc.len()` must equal the byte width.
    pub fn push(&mut self, desc: &[u8]) {
        assert_eq!(desc.len(), self.width_bytes, "descriptor width mismatch");
        self.data.extend_from_slice(desc);
        self.words = std::sync::OnceLock::new();
    }

    /// Number of descriptors.
    pub fn len(&self) -> usize {
        self.data.len().checked_div(self.width_bytes).unwrap_or(0)
    }

    /// Whether the container is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Descriptor width in bytes.
    pub fn width_bytes(&self) -> usize {
        self.width_bytes
    }

    /// Borrow descriptor `i`.
    pub fn row(&self, i: usize) -> &[u8] {
        &self.data[i * self.width_bytes..(i + 1) * self.width_bytes]
    }

    /// `u64` words per packed row: `ceil(width_bytes / 8)`.
    pub fn words_per_row(&self) -> usize {
        self.width_bytes.div_ceil(8)
    }

    /// All rows repacked as little-endian `u64` words, zero-padded to a
    /// whole word; computed once and cached (thread-safe).
    pub fn packed_words(&self) -> &[u64] {
        self.words.get_or_init(|| {
            let wpr = self.words_per_row();
            let mut out = Vec::with_capacity(self.len() * wpr);
            for i in 0..self.len() {
                let row = self.row(i);
                for chunk in row.chunks(8) {
                    let mut bytes = [0u8; 8];
                    bytes[..chunk.len()].copy_from_slice(chunk);
                    out.push(u64::from_le_bytes(bytes));
                }
            }
            out
        })
    }
}

/// Hamming distance between two equal-length byte strings.
#[inline]
pub fn hamming(a: &[u8], b: &[u8]) -> u32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(&x, &y)| (x ^ y).count_ones()).sum()
}

/// Hamming distance between two equal-length `u64`-packed descriptors.
#[inline]
pub fn hamming_words(a: &[u64], b: &[u64]) -> u32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(&x, &y)| (x ^ y).count_ones()).sum()
}

/// [`hamming_words`] with early abandon: exact whenever the result is
/// `< bound`; once the running count reaches `bound` the remaining words
/// may be skipped and any value `≥ bound` returned. Short descriptors
/// (≤ 4 words, e.g. ORB's 256 bits) are always computed in full — the
/// branch would cost more than it saves.
#[inline]
pub fn hamming_words_bounded(a: &[u64], b: &[u64], bound: u32) -> u32 {
    if a.len() <= 4 {
        return hamming_words(a, b);
    }
    let mut acc = 0u32;
    for (ca, cb) in a.chunks(4).zip(b.chunks(4)) {
        acc += hamming_words(ca, cb);
        if acc >= bound {
            return acc;
        }
    }
    acc
}

/// Squared Euclidean distance between two equal-length float vectors.
#[inline]
pub fn l2_sq(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(&x, &y)| (x - y) * (x - y)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn float_descriptor_roundtrip() {
        let mut d = FloatDescriptors::new(3);
        d.push(&[1.0, 2.0, 3.0]);
        d.push(&[4.0, 5.0, 6.0]);
        assert_eq!(d.len(), 2);
        assert_eq!(d.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(d.iter().count(), 2);
    }

    #[test]
    #[should_panic(expected = "descriptor width mismatch")]
    fn float_push_wrong_width_panics() {
        let mut d = FloatDescriptors::new(4);
        d.push(&[1.0]);
    }

    #[test]
    fn binary_descriptor_roundtrip() {
        let mut d = BinaryDescriptors::new(2);
        d.push(&[0xFF, 0x00]);
        d.push(&[0x0F, 0xF0]);
        assert_eq!(d.len(), 2);
        assert_eq!(d.row(0), &[0xFF, 0x00]);
    }

    #[test]
    fn hamming_distance_counts_bits() {
        assert_eq!(hamming(&[0xFF], &[0x00]), 8);
        assert_eq!(hamming(&[0b1010], &[0b0101]), 4);
        assert_eq!(hamming(&[1, 2, 3], &[1, 2, 3]), 0);
    }

    #[test]
    fn l2_sq_basic() {
        assert_eq!(l2_sq(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(l2_sq(&[1.0], &[1.0]), 0.0);
    }

    #[test]
    fn empty_containers() {
        let d = FloatDescriptors::new(8);
        assert!(d.is_empty());
        assert_eq!(d.len(), 0);
        let b = BinaryDescriptors::new(32);
        assert!(b.is_empty());
    }
}
