//! Brute-force descriptor matching with Lowe's ratio test.
//!
//! The paper: "we relied on OpenCV built-in methods and used brute-force
//! matching", "trimmed the resulting matching keypoints to the second-
//! nearest neighbour. A ratio test was then applied … setting the threshold
//! to 0.75 and 0.5" (§3.3). SIFT/SURF use the L2 norm; ORB uses Hamming
//! "since in BRIEF descriptors are parsed to binary strings".

use crate::error::{FeatureError, Result};
use crate::keypoint::{hamming, l2_sq, BinaryDescriptors, FloatDescriptors};

/// One query→train match: indices plus distance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DMatch {
    pub query_idx: usize,
    pub train_idx: usize,
    pub distance: f32,
}

/// A query descriptor's two nearest neighbours (second may be absent when
/// the train set has a single descriptor).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RatioMatch {
    pub best: DMatch,
    pub second: Option<DMatch>,
}

impl RatioMatch {
    /// Lowe's ratio test: accept when `best < ratio * second`. A match with
    /// no second neighbour is accepted (nothing to compare against).
    pub fn passes_ratio(&self, ratio: f32) -> bool {
        match self.second {
            Some(second) => self.best.distance < ratio * second.distance,
            None => true,
        }
    }
}

/// For each query descriptor, find its two nearest train descriptors under
/// squared L2. Returns one [`RatioMatch`] per query descriptor; empty when
/// either side is empty.
///
/// ```
/// use taor_features::{knn_match_float, ratio_test_matches, FloatDescriptors};
///
/// let mut train = FloatDescriptors::new(2);
/// train.push(&[0.0, 0.0]);
/// train.push(&[5.0, 5.0]);
/// let mut query = FloatDescriptors::new(2);
/// query.push(&[0.2, 0.1]);
/// let matches = knn_match_float(&query, &train).unwrap();
/// assert_eq!(matches[0].best.train_idx, 0);
/// assert_eq!(ratio_test_matches(&matches, 0.75).len(), 1);
/// ```
pub fn knn_match_float(
    query: &FloatDescriptors,
    train: &FloatDescriptors,
) -> Result<Vec<RatioMatch>> {
    if query.is_empty() || train.is_empty() {
        return Ok(Vec::new());
    }
    if query.width() != train.width() {
        return Err(FeatureError::DescriptorWidthMismatch {
            left: query.width(),
            right: train.width(),
        });
    }
    let mut out = Vec::with_capacity(query.len());
    for qi in 0..query.len() {
        let q = query.row(qi);
        let mut best = DMatch { query_idx: qi, train_idx: 0, distance: f32::INFINITY };
        let mut second: Option<DMatch> = None;
        for ti in 0..train.len() {
            let d = l2_sq(q, train.row(ti));
            if d < best.distance {
                second = Some(best);
                best = DMatch { query_idx: qi, train_idx: ti, distance: d };
            } else if second.is_none_or(|s| d < s.distance) {
                second = Some(DMatch { query_idx: qi, train_idx: ti, distance: d });
            }
        }
        // The placeholder initial `best` must never leak out as `second`.
        let second = second.filter(|s| s.distance.is_finite());
        out.push(RatioMatch { best, second });
    }
    Ok(out)
}

/// For each query descriptor, find its two nearest train descriptors under
/// Hamming distance.
pub fn knn_match_binary(
    query: &BinaryDescriptors,
    train: &BinaryDescriptors,
) -> Result<Vec<RatioMatch>> {
    if query.is_empty() || train.is_empty() {
        return Ok(Vec::new());
    }
    if query.width_bytes() != train.width_bytes() {
        return Err(FeatureError::DescriptorWidthMismatch {
            left: query.width_bytes(),
            right: train.width_bytes(),
        });
    }
    let mut out = Vec::with_capacity(query.len());
    for qi in 0..query.len() {
        let q = query.row(qi);
        let mut best = DMatch { query_idx: qi, train_idx: 0, distance: f32::INFINITY };
        let mut second: Option<DMatch> = None;
        for ti in 0..train.len() {
            let d = hamming(q, train.row(ti)) as f32;
            if d < best.distance {
                second = Some(best);
                best = DMatch { query_idx: qi, train_idx: ti, distance: d };
            } else if second.is_none_or(|s| d < s.distance) {
                second = Some(DMatch { query_idx: qi, train_idx: ti, distance: d });
            }
        }
        let second = second.filter(|s| s.distance.is_finite());
        out.push(RatioMatch { best, second });
    }
    Ok(out)
}

/// Filter kNN matches with Lowe's ratio test, returning the surviving best
/// matches.
pub fn ratio_test_matches(matches: &[RatioMatch], ratio: f32) -> Vec<DMatch> {
    matches.iter().filter(|m| m.passes_ratio(ratio)).map(|m| m.best).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn float_set(rows: &[&[f32]]) -> FloatDescriptors {
        let mut d = FloatDescriptors::new(rows[0].len());
        for r in rows {
            d.push(r);
        }
        d
    }

    #[test]
    fn nearest_neighbour_found() {
        let q = float_set(&[&[0.0, 0.0]]);
        let t = float_set(&[&[5.0, 5.0], &[0.1, 0.0], &[3.0, 0.0]]);
        let m = knn_match_float(&q, &t).unwrap();
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].best.train_idx, 1);
        assert_eq!(m[0].second.unwrap().train_idx, 2);
    }

    #[test]
    fn ratio_test_rejects_ambiguous() {
        let q = float_set(&[&[0.0]]);
        // Two train descriptors almost equidistant: ambiguous.
        let t = float_set(&[&[1.0], &[-1.01]]);
        let m = knn_match_float(&q, &t).unwrap();
        assert!(!m[0].passes_ratio(0.75));
        // A clearly closer best match passes.
        let t2 = float_set(&[&[0.1], &[5.0]]);
        let m2 = knn_match_float(&q, &t2).unwrap();
        assert!(m2[0].passes_ratio(0.75));
    }

    #[test]
    fn single_train_descriptor_has_no_second() {
        let q = float_set(&[&[0.0]]);
        let t = float_set(&[&[2.0]]);
        let m = knn_match_float(&q, &t).unwrap();
        assert!(m[0].second.is_none());
        assert!(m[0].passes_ratio(0.5), "no second neighbour -> accepted");
    }

    #[test]
    fn empty_inputs_yield_empty_output() {
        let e = FloatDescriptors::new(4);
        let t = float_set(&[&[1.0, 2.0, 3.0, 4.0]]);
        assert!(knn_match_float(&e, &t).unwrap().is_empty());
        assert!(knn_match_float(&t, &e).unwrap().is_empty());
    }

    #[test]
    fn width_mismatch_is_error() {
        let a = float_set(&[&[1.0, 2.0]]);
        let b = float_set(&[&[1.0, 2.0, 3.0]]);
        assert!(matches!(
            knn_match_float(&a, &b),
            Err(FeatureError::DescriptorWidthMismatch { .. })
        ));
    }

    #[test]
    fn binary_matching_uses_hamming() {
        let mut q = BinaryDescriptors::new(1);
        q.push(&[0b0000_1111]);
        let mut t = BinaryDescriptors::new(1);
        t.push(&[0b1111_0000]); // distance 8
        t.push(&[0b0000_1110]); // distance 1
        let m = knn_match_binary(&q, &t).unwrap();
        assert_eq!(m[0].best.train_idx, 1);
        assert_eq!(m[0].best.distance, 1.0);
        assert_eq!(m[0].second.unwrap().distance, 8.0);
    }

    #[test]
    fn ratio_test_matches_filters() {
        let q = float_set(&[&[0.0], &[10.0]]);
        let t = float_set(&[&[0.1], &[0.2], &[10.05]]);
        let m = knn_match_float(&q, &t).unwrap();
        let kept = ratio_test_matches(&m, 0.5);
        // Query 0 is ambiguous (0.1 vs 0.2 -> squared 0.01 vs 0.04: ratio
        // 0.25 < 0.5 actually passes); query 1 clearly passes.
        assert!(kept.iter().any(|d| d.query_idx == 1));
    }

    #[test]
    fn every_query_gets_a_match_row() {
        let q = float_set(&[&[0.0], &[1.0], &[2.0]]);
        let t = float_set(&[&[0.5], &[1.5]]);
        let m = knn_match_float(&q, &t).unwrap();
        assert_eq!(m.len(), 3);
    }
}
