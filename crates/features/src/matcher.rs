// taor-lint: allow(panic::index) — dense numeric kernel: indices are derived from dimensions validated at the public boundary and bounded by the enclosing loops.
//! Brute-force descriptor matching with Lowe's ratio test.
//!
//! The paper: "we relied on OpenCV built-in methods and used brute-force
//! matching", "trimmed the resulting matching keypoints to the second-
//! nearest neighbour. A ratio test was then applied … setting the threshold
//! to 0.75 and 0.5" (§3.3). SIFT/SURF use the L2 norm; ORB uses Hamming
//! "since in BRIEF descriptors are parsed to binary strings".
//!
//! Two kernel tiers per metric, selected by problem size:
//!
//! * **L2:** [`knn_match_float`] rewrites the distance matrix as
//!   `‖q−t‖² = ‖q‖² + ‖t‖² − 2q·t` and computes the `q·t` cross terms
//!   with `taor-nn`'s blocked GEMM (query-block × trainᵀ), using cached
//!   row norms. The approximate distances only *select* a candidate set
//!   (with a rounding-error slack wide enough to be provably inclusive);
//!   every returned distance comes from an exact [`l2_sq`] rescore that
//!   replays the naive loop's update sequence over the candidates, so
//!   best/second indices, distances, tie behaviour and the NaN
//!   quarantine are bit-identical to [`knn_match_float_naive`]. Inputs
//!   containing non-finite (or overflow-prone) rows fall back to the
//!   naive loop outright.
//! * **Hamming:** [`knn_match_binary`] runs over cached `u64` repacked
//!   rows with `count_ones`, early-abandoning a candidate once its
//!   partial distance reaches the current second-best bound.
//!
//! The original scalar double loops are retained as
//! [`knn_match_float_naive`] / [`knn_match_binary_naive`]: they are the
//! equivalence oracle for the property tests and the baseline the
//! criterion pins measure against.

use crate::error::{FeatureError, Result};
use crate::keypoint::{hamming, hamming_words_bounded, l2_sq, BinaryDescriptors, FloatDescriptors};
use rayon::prelude::*;

/// One query→train match: indices plus distance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DMatch {
    pub query_idx: usize,
    pub train_idx: usize,
    pub distance: f32,
}

/// A query descriptor's two nearest neighbours (second may be absent when
/// the train set has a single descriptor).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RatioMatch {
    pub best: DMatch,
    pub second: Option<DMatch>,
}

impl RatioMatch {
    /// Lowe's ratio test: accept when `best < ratio * second`. A match with
    /// no second neighbour is accepted (nothing to compare against).
    pub fn passes_ratio(&self, ratio: f32) -> bool {
        match self.second {
            Some(second) => self.best.distance < ratio * second.distance,
            None => true,
        }
    }
}

/// For each query descriptor, find its two nearest train descriptors under
/// squared L2. Returns one [`RatioMatch`] per query descriptor; empty when
/// either side is empty.
///
/// ```
/// use taor_features::{knn_match_float, ratio_test_matches, FloatDescriptors};
///
/// let mut train = FloatDescriptors::new(2);
/// train.push(&[0.0, 0.0]);
/// train.push(&[5.0, 5.0]);
/// let mut query = FloatDescriptors::new(2);
/// query.push(&[0.2, 0.1]);
/// let matches = knn_match_float(&query, &train).unwrap();
/// assert_eq!(matches[0].best.train_idx, 0);
/// assert_eq!(ratio_test_matches(&matches, 0.75).len(), 1);
/// ```
pub fn knn_match_float(
    query: &FloatDescriptors,
    train: &FloatDescriptors,
) -> Result<Vec<RatioMatch>> {
    if query.is_empty() || train.is_empty() {
        return Ok(Vec::new());
    }
    if query.width() != train.width() {
        return Err(FeatureError::DescriptorWidthMismatch {
            left: query.width(),
            right: train.width(),
        });
    }
    if query.len() * train.len() < GEMM_MIN_PAIRS || query.width() < GEMM_MIN_WIDTH {
        return knn_match_float_naive(query, train);
    }
    let qn = query.norms_sq();
    let tn = train.norms_sq();
    // The norm-trick error analysis below assumes every distance stays
    // well inside f32 range; rows with non-finite or overflow-prone
    // norms take the (NaN/∞-exact) naive loop instead.
    if !rows_clean(qn) || !rows_clean(tn) {
        return knn_match_float_naive(query, train);
    }
    Ok(knn_match_float_gemm(query, train, qn, tn))
}

/// The scalar O(Q·T·D) reference loop the seed shipped, retained
/// verbatim: the equivalence oracle for the GEMM-backed kernel (the
/// property tests assert bit-identical output) and the baseline of the
/// matcher criterion pins.
pub fn knn_match_float_naive(
    query: &FloatDescriptors,
    train: &FloatDescriptors,
) -> Result<Vec<RatioMatch>> {
    if query.is_empty() || train.is_empty() {
        return Ok(Vec::new());
    }
    if query.width() != train.width() {
        return Err(FeatureError::DescriptorWidthMismatch {
            left: query.width(),
            right: train.width(),
        });
    }
    let mut out = Vec::with_capacity(query.len());
    for qi in 0..query.len() {
        let q = query.row(qi);
        let mut best = DMatch { query_idx: qi, train_idx: 0, distance: f32::INFINITY };
        let mut second: Option<DMatch> = None;
        for ti in 0..train.len() {
            let d = l2_sq(q, train.row(ti));
            if d < best.distance {
                second = Some(best);
                best = DMatch { query_idx: qi, train_idx: ti, distance: d };
            } else if second.is_none_or(|s| d < s.distance) {
                second = Some(DMatch { query_idx: qi, train_idx: ti, distance: d });
            }
        }
        // The placeholder initial `best` must never leak out as `second`.
        let second = second.filter(|s| s.distance.is_finite());
        out.push(RatioMatch { best, second });
    }
    Ok(out)
}

/// Below this many (query × train) pairs the GEMM set-up cost exceeds
/// the naive loop; the paper's own reference sets (~10² descriptors a
/// side) sit under it.
const GEMM_MIN_PAIRS: usize = 4096;
/// Narrow descriptors gain nothing from the norm trick.
const GEMM_MIN_WIDTH: usize = 8;
/// Queries per GEMM block: one `QUERY_BLOCK × train` product panel.
const QUERY_BLOCK: usize = 64;
/// Rows with squared norms above this (or non-finite) use the naive
/// loop: keeps every quantity in the candidate-selection error bound
/// far from f32 overflow.
const MAX_CLEAN_NORM: f32 = 1e30;

fn rows_clean(norms: &[f32]) -> bool {
    norms.iter().all(|n| n.is_finite() && *n <= MAX_CLEAN_NORM)
}

/// The GEMM-backed kernel; requires validated, finite inputs.
///
/// Exactness: with `e(ti)` the exact distance and `a(ti)` the
/// norm-trick approximation, `|a − e| ≤ err(ti)` where `err` is a few
/// ulps of `D·(‖q‖² + ‖t‖²)` (Cauchy–Schwarz bounds every partial sum
/// of `q·t` by `(‖q‖² + ‖t‖²)/2`, and the GEMM accumulates `D` such
/// terms). The second-smallest approximation `a2` then satisfies
/// `e2 ≤ a2 + err_max`, so every index with `e ≤ e2` — the only ones
/// that can influence the naive loop's final state — has
/// `a ≤ a2 + 2·err_max`, inside the `4·err_max` cutoff used here. The
/// exact-rescore pass replays the naive update over that candidate
/// superset in ascending index order, which yields the identical
/// (best, second) pair, tie-for-tie.
fn knn_match_float_gemm(
    query: &FloatDescriptors,
    train: &FloatDescriptors,
    qn: &[f32],
    tn: &[f32],
) -> Vec<RatioMatch> {
    let d = query.width();
    let t = train.len();
    let qdata = query.as_slice();
    let tdata = train.as_slice();
    let tn_max = tn.iter().copied().fold(0.0f32, f32::max);
    // 16× cushion over the ~D·ε worst-case rounding, ×4 at the cutoff.
    let rel = 16.0 * d as f32 * f32::EPSILON;
    let nblocks = query.len().div_ceil(QUERY_BLOCK);
    let blocks: Vec<Vec<RatioMatch>> = (0..nblocks)
        .into_par_iter()
        .map(|b| {
            let q0 = b * QUERY_BLOCK;
            let qlen = QUERY_BLOCK.min(query.len() - q0);
            let mut prod = vec![0.0f32; qlen * t];
            taor_nn::gemm::gemm_nt(
                qlen,
                t,
                d,
                &qdata[q0 * d..(q0 + qlen) * d],
                tdata,
                &mut prod,
                false,
            );
            let mut out = Vec::with_capacity(qlen);
            for r in 0..qlen {
                let qi = q0 + r;
                let row = &prod[r * t..(r + 1) * t];
                // Pass 1: two smallest approximate distances.
                let (mut a1, mut a2) = (f32::INFINITY, f32::INFINITY);
                for (ti, &g) in row.iter().enumerate() {
                    let a = qn[qi] + tn[ti] - 2.0 * g;
                    if a < a1 {
                        a2 = a1;
                        a1 = a;
                    } else if a < a2 {
                        a2 = a;
                    }
                }
                let cutoff = a2 + 4.0 * rel * (qn[qi] + tn_max);
                // Pass 2: naive update sequence over the candidate set.
                let q_row = query.row(qi);
                let mut best = DMatch { query_idx: qi, train_idx: 0, distance: f32::INFINITY };
                let mut second: Option<DMatch> = None;
                for (ti, &g) in row.iter().enumerate() {
                    if qn[qi] + tn[ti] - 2.0 * g > cutoff {
                        continue;
                    }
                    let dist = l2_sq(q_row, train.row(ti));
                    if dist < best.distance {
                        second = Some(best);
                        best = DMatch { query_idx: qi, train_idx: ti, distance: dist };
                    } else if second.is_none_or(|s| dist < s.distance) {
                        second = Some(DMatch { query_idx: qi, train_idx: ti, distance: dist });
                    }
                }
                let second = second.filter(|s| s.distance.is_finite());
                out.push(RatioMatch { best, second });
            }
            out
        })
        .collect();
    blocks.into_iter().flatten().collect()
}

/// For each query descriptor, find its two nearest train descriptors under
/// Hamming distance. Word-packed popcount kernel with an early-abandon
/// bound; output is bit-identical to [`knn_match_binary_naive`].
pub fn knn_match_binary(
    query: &BinaryDescriptors,
    train: &BinaryDescriptors,
) -> Result<Vec<RatioMatch>> {
    if query.is_empty() || train.is_empty() {
        return Ok(Vec::new());
    }
    if query.width_bytes() != train.width_bytes() {
        return Err(FeatureError::DescriptorWidthMismatch {
            left: query.width_bytes(),
            right: train.width_bytes(),
        });
    }
    let wpr = query.words_per_row();
    let qw = query.packed_words();
    let tw = train.packed_words();
    let t = train.len();
    Ok((0..query.len())
        .into_par_iter()
        .map(|qi| {
            let q = &qw[qi * wpr..(qi + 1) * wpr];
            let mut best = DMatch { query_idx: qi, train_idx: 0, distance: f32::INFINITY };
            let mut second: Option<DMatch> = None;
            for ti in 0..t {
                // Once `second` is finite, a candidate whose partial count
                // reaches it can no longer change state (best ≤ second and
                // both updates compare with strict `<`), so the distance
                // may be left unfinished.
                let bound = match second {
                    Some(s) if s.distance.is_finite() => s.distance as u32,
                    _ => u32::MAX,
                };
                let d = hamming_words_bounded(q, &tw[ti * wpr..(ti + 1) * wpr], bound) as f32;
                if d < best.distance {
                    second = Some(best);
                    best = DMatch { query_idx: qi, train_idx: ti, distance: d };
                } else if second.is_none_or(|s| d < s.distance) {
                    second = Some(DMatch { query_idx: qi, train_idx: ti, distance: d });
                }
            }
            let second = second.filter(|s| s.distance.is_finite());
            RatioMatch { best, second }
        })
        .collect())
}

/// The scalar byte-wise Hamming reference loop, retained as the
/// equivalence oracle and criterion-pin baseline.
pub fn knn_match_binary_naive(
    query: &BinaryDescriptors,
    train: &BinaryDescriptors,
) -> Result<Vec<RatioMatch>> {
    if query.is_empty() || train.is_empty() {
        return Ok(Vec::new());
    }
    if query.width_bytes() != train.width_bytes() {
        return Err(FeatureError::DescriptorWidthMismatch {
            left: query.width_bytes(),
            right: train.width_bytes(),
        });
    }
    let mut out = Vec::with_capacity(query.len());
    for qi in 0..query.len() {
        let q = query.row(qi);
        let mut best = DMatch { query_idx: qi, train_idx: 0, distance: f32::INFINITY };
        let mut second: Option<DMatch> = None;
        for ti in 0..train.len() {
            let d = hamming(q, train.row(ti)) as f32;
            if d < best.distance {
                second = Some(best);
                best = DMatch { query_idx: qi, train_idx: ti, distance: d };
            } else if second.is_none_or(|s| d < s.distance) {
                second = Some(DMatch { query_idx: qi, train_idx: ti, distance: d });
            }
        }
        let second = second.filter(|s| s.distance.is_finite());
        out.push(RatioMatch { best, second });
    }
    Ok(out)
}

/// Filter kNN matches with Lowe's ratio test, returning the surviving best
/// matches.
pub fn ratio_test_matches(matches: &[RatioMatch], ratio: f32) -> Vec<DMatch> {
    matches.iter().filter(|m| m.passes_ratio(ratio)).map(|m| m.best).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn float_set(rows: &[&[f32]]) -> FloatDescriptors {
        let mut d = FloatDescriptors::new(rows[0].len());
        for r in rows {
            d.push(r);
        }
        d
    }

    #[test]
    fn nearest_neighbour_found() {
        let q = float_set(&[&[0.0, 0.0]]);
        let t = float_set(&[&[5.0, 5.0], &[0.1, 0.0], &[3.0, 0.0]]);
        let m = knn_match_float(&q, &t).unwrap();
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].best.train_idx, 1);
        assert_eq!(m[0].second.unwrap().train_idx, 2);
    }

    #[test]
    fn ratio_test_rejects_ambiguous() {
        let q = float_set(&[&[0.0]]);
        // Two train descriptors almost equidistant: ambiguous.
        let t = float_set(&[&[1.0], &[-1.01]]);
        let m = knn_match_float(&q, &t).unwrap();
        assert!(!m[0].passes_ratio(0.75));
        // A clearly closer best match passes.
        let t2 = float_set(&[&[0.1], &[5.0]]);
        let m2 = knn_match_float(&q, &t2).unwrap();
        assert!(m2[0].passes_ratio(0.75));
    }

    #[test]
    fn single_train_descriptor_has_no_second() {
        let q = float_set(&[&[0.0]]);
        let t = float_set(&[&[2.0]]);
        let m = knn_match_float(&q, &t).unwrap();
        assert!(m[0].second.is_none());
        assert!(m[0].passes_ratio(0.5), "no second neighbour -> accepted");
    }

    #[test]
    fn empty_inputs_yield_empty_output() {
        let e = FloatDescriptors::new(4);
        let t = float_set(&[&[1.0, 2.0, 3.0, 4.0]]);
        assert!(knn_match_float(&e, &t).unwrap().is_empty());
        assert!(knn_match_float(&t, &e).unwrap().is_empty());
    }

    #[test]
    fn width_mismatch_is_error() {
        let a = float_set(&[&[1.0, 2.0]]);
        let b = float_set(&[&[1.0, 2.0, 3.0]]);
        assert!(matches!(
            knn_match_float(&a, &b),
            Err(FeatureError::DescriptorWidthMismatch { .. })
        ));
    }

    #[test]
    fn binary_matching_uses_hamming() {
        let mut q = BinaryDescriptors::new(1);
        q.push(&[0b0000_1111]);
        let mut t = BinaryDescriptors::new(1);
        t.push(&[0b1111_0000]); // distance 8
        t.push(&[0b0000_1110]); // distance 1
        let m = knn_match_binary(&q, &t).unwrap();
        assert_eq!(m[0].best.train_idx, 1);
        assert_eq!(m[0].best.distance, 1.0);
        assert_eq!(m[0].second.unwrap().distance, 8.0);
    }

    #[test]
    fn ratio_test_matches_filters() {
        let q = float_set(&[&[0.0], &[10.0]]);
        let t = float_set(&[&[0.1], &[0.2], &[10.05]]);
        let m = knn_match_float(&q, &t).unwrap();
        let kept = ratio_test_matches(&m, 0.5);
        // Query 0 is ambiguous (0.1 vs 0.2 -> squared 0.01 vs 0.04: ratio
        // 0.25 < 0.5 actually passes); query 1 clearly passes.
        assert!(kept.iter().any(|d| d.query_idx == 1));
    }

    #[test]
    fn every_query_gets_a_match_row() {
        let q = float_set(&[&[0.0], &[1.0], &[2.0]]);
        let t = float_set(&[&[0.5], &[1.5]]);
        let m = knn_match_float(&q, &t).unwrap();
        assert_eq!(m.len(), 3);
    }
}
