//! Property-based tests for descriptors and matching.

use proptest::prelude::*;
use taor_features::keypoint::{hamming, l2_sq};
use taor_features::matcher::{knn_match_float, ratio_test_matches};
use taor_features::ransac::Similarity;
use taor_features::FloatDescriptors;

fn descs(rows: Vec<Vec<f32>>) -> FloatDescriptors {
    let mut d = FloatDescriptors::new(rows[0].len());
    for r in &rows {
        d.push(r);
    }
    d
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn hamming_is_a_metric(
        a in proptest::collection::vec(any::<u8>(), 8),
        b in proptest::collection::vec(any::<u8>(), 8),
        c in proptest::collection::vec(any::<u8>(), 8),
    ) {
        prop_assert_eq!(hamming(&a, &a), 0);
        prop_assert_eq!(hamming(&a, &b), hamming(&b, &a));
        prop_assert!(hamming(&a, &c) <= hamming(&a, &b) + hamming(&b, &c));
        prop_assert!(hamming(&a, &b) <= 64);
    }

    #[test]
    fn l2_sq_properties(
        a in proptest::collection::vec(-10.0f32..10.0, 6),
        b in proptest::collection::vec(-10.0f32..10.0, 6),
    ) {
        prop_assert_eq!(l2_sq(&a, &a), 0.0);
        prop_assert!((l2_sq(&a, &b) - l2_sq(&b, &a)).abs() < 1e-4);
        prop_assert!(l2_sq(&a, &b) >= 0.0);
    }

    #[test]
    fn best_match_is_really_the_nearest(
        rows in proptest::collection::vec(proptest::collection::vec(-5.0f32..5.0, 4), 3..12),
        query in proptest::collection::vec(-5.0f32..5.0, 4),
    ) {
        let train = descs(rows.clone());
        let q = descs(vec![query.clone()]);
        let m = knn_match_float(&q, &train).unwrap();
        let best = m[0].best;
        for (i, r) in rows.iter().enumerate() {
            prop_assert!(
                l2_sq(&query, r) >= best.distance - 1e-5,
                "row {} at {} beats reported best {}",
                i,
                l2_sq(&query, r),
                best.distance
            );
        }
        if let Some(second) = m[0].second {
            prop_assert!(second.distance >= best.distance);
        }
    }

    #[test]
    fn ratio_test_monotone_in_threshold(
        rows in proptest::collection::vec(proptest::collection::vec(-5.0f32..5.0, 4), 4..10),
        queries in proptest::collection::vec(proptest::collection::vec(-5.0f32..5.0, 4), 1..6),
    ) {
        let train = descs(rows);
        let q = descs(queries);
        let m = knn_match_float(&q, &train).unwrap();
        let strict = ratio_test_matches(&m, 0.5).len();
        let loose = ratio_test_matches(&m, 0.9).len();
        prop_assert!(strict <= loose, "stricter threshold kept more matches");
    }

    #[test]
    fn similarity_roundtrips_any_nondegenerate_pair(
        ax in -20.0f32..20.0, ay in -20.0f32..20.0,
        s in 0.3f32..3.0, theta in -3.0f32..3.0,
        tx in -30.0f32..30.0, ty in -30.0f32..30.0,
    ) {
        let t = Similarity { a: s * theta.cos(), b: s * theta.sin(), tx, ty };
        let p1 = (ax, ay);
        let p2 = (ax + 5.0, ay - 3.0);
        let est = Similarity::from_two_points(p1, p2, t.apply(p1), t.apply(p2)).unwrap();
        prop_assert!((est.scale() - s).abs() < 1e-2 * s.max(1.0));
        let check = (7.0f32, -2.0f32);
        let (x1, y1) = t.apply(check);
        let (x2, y2) = est.apply(check);
        prop_assert!((x1 - x2).abs() < 0.05 && (y1 - y2).abs() < 0.05);
    }

    #[test]
    fn similarity_scale_and_angle_consistent(s in 0.2f32..4.0, theta in -3.1f32..3.1) {
        let t = Similarity { a: s * theta.cos(), b: s * theta.sin(), tx: 0.0, ty: 0.0 };
        prop_assert!((t.scale() - s).abs() < 1e-4);
        prop_assert!((t.angle() - theta).abs() < 1e-4);
    }
}
