//! Property-based tests for descriptors and matching.

use proptest::prelude::*;
use taor_features::keypoint::{hamming, l2_sq};
use taor_features::matcher::{knn_match_float, ratio_test_matches};
use taor_features::ransac::Similarity;
use taor_features::FloatDescriptors;

fn descs(rows: Vec<Vec<f32>>) -> FloatDescriptors {
    let mut d = FloatDescriptors::new(rows[0].len());
    for r in &rows {
        d.push(r);
    }
    d
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn hamming_is_a_metric(
        a in proptest::collection::vec(any::<u8>(), 8),
        b in proptest::collection::vec(any::<u8>(), 8),
        c in proptest::collection::vec(any::<u8>(), 8),
    ) {
        prop_assert_eq!(hamming(&a, &a), 0);
        prop_assert_eq!(hamming(&a, &b), hamming(&b, &a));
        prop_assert!(hamming(&a, &c) <= hamming(&a, &b) + hamming(&b, &c));
        prop_assert!(hamming(&a, &b) <= 64);
    }

    #[test]
    fn l2_sq_properties(
        a in proptest::collection::vec(-10.0f32..10.0, 6),
        b in proptest::collection::vec(-10.0f32..10.0, 6),
    ) {
        prop_assert_eq!(l2_sq(&a, &a), 0.0);
        prop_assert!((l2_sq(&a, &b) - l2_sq(&b, &a)).abs() < 1e-4);
        prop_assert!(l2_sq(&a, &b) >= 0.0);
    }

    #[test]
    fn best_match_is_really_the_nearest(
        rows in proptest::collection::vec(proptest::collection::vec(-5.0f32..5.0, 4), 3..12),
        query in proptest::collection::vec(-5.0f32..5.0, 4),
    ) {
        let train = descs(rows.clone());
        let q = descs(vec![query.clone()]);
        let m = knn_match_float(&q, &train).unwrap();
        let best = m[0].best;
        for (i, r) in rows.iter().enumerate() {
            prop_assert!(
                l2_sq(&query, r) >= best.distance - 1e-5,
                "row {} at {} beats reported best {}",
                i,
                l2_sq(&query, r),
                best.distance
            );
        }
        if let Some(second) = m[0].second {
            prop_assert!(second.distance >= best.distance);
        }
    }

    #[test]
    fn ratio_test_monotone_in_threshold(
        rows in proptest::collection::vec(proptest::collection::vec(-5.0f32..5.0, 4), 4..10),
        queries in proptest::collection::vec(proptest::collection::vec(-5.0f32..5.0, 4), 1..6),
    ) {
        let train = descs(rows);
        let q = descs(queries);
        let m = knn_match_float(&q, &train).unwrap();
        let strict = ratio_test_matches(&m, 0.5).len();
        let loose = ratio_test_matches(&m, 0.9).len();
        prop_assert!(strict <= loose, "stricter threshold kept more matches");
    }

    #[test]
    fn similarity_roundtrips_any_nondegenerate_pair(
        ax in -20.0f32..20.0, ay in -20.0f32..20.0,
        s in 0.3f32..3.0, theta in -3.0f32..3.0,
        tx in -30.0f32..30.0, ty in -30.0f32..30.0,
    ) {
        let t = Similarity { a: s * theta.cos(), b: s * theta.sin(), tx, ty };
        let p1 = (ax, ay);
        let p2 = (ax + 5.0, ay - 3.0);
        let est = Similarity::from_two_points(p1, p2, t.apply(p1), t.apply(p2)).unwrap();
        prop_assert!((est.scale() - s).abs() < 1e-2 * s.max(1.0));
        let check = (7.0f32, -2.0f32);
        let (x1, y1) = t.apply(check);
        let (x2, y2) = est.apply(check);
        prop_assert!((x1 - x2).abs() < 0.05 && (y1 - y2).abs() < 0.05);
    }

    #[test]
    fn similarity_scale_and_angle_consistent(s in 0.2f32..4.0, theta in -3.1f32..3.1) {
        let t = Similarity { a: s * theta.cos(), b: s * theta.sin(), tx: 0.0, ty: 0.0 };
        prop_assert!((t.scale() - s).abs() < 1e-4);
        prop_assert!((t.angle() - theta).abs() < 1e-4);
    }
}

// ---------------------------------------------------------------------------
// Fast-path matcher equivalence: the GEMM-backed float matcher and the
// popcount Hamming matcher must be *bit-identical* to the retained naive
// reference loops — same best/second indices, same exact distances, same
// NaN-quarantine and tie behaviour.
// ---------------------------------------------------------------------------

use taor_features::matcher::{knn_match_binary, knn_match_binary_naive, knn_match_float_naive};
use taor_features::BinaryDescriptors;

/// Build a `FloatDescriptors` from a flat row-major buffer.
fn descs_flat(width: usize, flat: &[f32]) -> FloatDescriptors {
    let mut d = FloatDescriptors::new(width);
    for row in flat.chunks_exact(width) {
        d.push(row);
    }
    d
}

fn bdescs_flat(width_bytes: usize, flat: &[u8]) -> BinaryDescriptors {
    let mut d = BinaryDescriptors::new(width_bytes);
    for row in flat.chunks_exact(width_bytes) {
        d.push(row);
    }
    d
}

// Sized so query.len() * train.len() >= 4096 and width >= 8: these hit the
// GEMM fast path, not the naive fallback (see matcher::GEMM_MIN_PAIRS).
const EQ_WIDTH: usize = 16;
const EQ_QUERIES: usize = 72;
const EQ_TRAIN: usize = 60;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn gemm_float_matcher_is_bit_identical_to_naive(
        qflat in proptest::collection::vec(-4.0f32..4.0, EQ_QUERIES * EQ_WIDTH),
        tflat in proptest::collection::vec(-4.0f32..4.0, EQ_TRAIN * EQ_WIDTH),
    ) {
        let q = descs_flat(EQ_WIDTH, &qflat);
        let t = descs_flat(EQ_WIDTH, &tflat);
        let fast = knn_match_float(&q, &t).unwrap();
        let naive = knn_match_float_naive(&q, &t).unwrap();
        prop_assert_eq!(fast, naive);
    }

    #[test]
    fn gemm_float_matcher_matches_naive_on_tie_heavy_sets(
        qpick in proptest::collection::vec(0usize..3, EQ_QUERIES * EQ_WIDTH),
        tpick in proptest::collection::vec(0usize..3, EQ_TRAIN * EQ_WIDTH),
    ) {
        // A 3-value palette makes duplicate rows and exact distance ties
        // overwhelmingly likely; first-index-wins must agree exactly.
        let palette = [-1.0f32, 0.0, 2.5];
        let qflat: Vec<f32> = qpick.iter().map(|&i| palette[i]).collect();
        let tflat: Vec<f32> = tpick.iter().map(|&i| palette[i]).collect();
        let q = descs_flat(EQ_WIDTH, &qflat);
        let t = descs_flat(EQ_WIDTH, &tflat);
        let fast = knn_match_float(&q, &t).unwrap();
        let naive = knn_match_float_naive(&q, &t).unwrap();
        prop_assert_eq!(fast, naive);
    }

    #[test]
    fn float_matcher_matches_naive_with_nan_poisoned_rows(
        qflat in proptest::collection::vec(-4.0f32..4.0, EQ_QUERIES * EQ_WIDTH),
        tflat in proptest::collection::vec(-4.0f32..4.0, EQ_TRAIN * EQ_WIDTH),
        qbad in proptest::collection::vec(0usize..EQ_QUERIES * EQ_WIDTH, 1..8),
        tbad in proptest::collection::vec(0usize..EQ_TRAIN * EQ_WIDTH, 1..8),
        use_inf in 0u8..2,
    ) {
        let poison = if use_inf == 1 { f32::INFINITY } else { f32::NAN };
        let mut qflat = qflat;
        let mut tflat = tflat;
        for &i in &qbad {
            qflat[i] = poison;
        }
        for &i in &tbad {
            tflat[i] = poison;
        }
        let q = descs_flat(EQ_WIDTH, &qflat);
        let t = descs_flat(EQ_WIDTH, &tflat);
        let fast = knn_match_float(&q, &t).unwrap();
        let naive = knn_match_float_naive(&q, &t).unwrap();
        prop_assert_eq!(fast, naive);
    }

    #[test]
    fn binary_matcher_is_identical_to_naive(
        // 40-byte rows = 5 packed words per row, exercising the early-abandon
        // path of `hamming_words_bounded` (taken only above 4 words).
        qflat in proptest::collection::vec(any::<u8>(), 48 * 40),
        tflat in proptest::collection::vec(any::<u8>(), 40 * 40),
    ) {
        let q = bdescs_flat(40, &qflat);
        let t = bdescs_flat(40, &tflat);
        let fast = knn_match_binary(&q, &t).unwrap();
        let naive = knn_match_binary_naive(&q, &t).unwrap();
        prop_assert_eq!(fast, naive);
    }

    #[test]
    fn binary_matcher_is_identical_to_naive_orb_width(
        qflat in proptest::collection::vec(any::<u8>(), 24 * 32),
        tflat in proptest::collection::vec(any::<u8>(), 20 * 32),
    ) {
        // ORB's 32-byte rows pack to exactly 4 words: the full-compute path.
        let q = bdescs_flat(32, &qflat);
        let t = bdescs_flat(32, &tflat);
        let fast = knn_match_binary(&q, &t).unwrap();
        let naive = knn_match_binary_naive(&q, &t).unwrap();
        prop_assert_eq!(fast, naive);
    }

    #[test]
    fn matchers_agree_on_degenerate_sets(width in 1usize..24) {
        // Empty query or train: Ok(vec![]) from both implementations.
        let empty = FloatDescriptors::new(width);
        let one = descs_flat(width, &vec![1.0; width]);
        prop_assert_eq!(knn_match_float(&empty, &one).unwrap(), vec![]);
        prop_assert_eq!(knn_match_float_naive(&empty, &one).unwrap(), vec![]);
        prop_assert_eq!(knn_match_float(&one, &empty).unwrap(), vec![]);
        prop_assert_eq!(knn_match_float_naive(&one, &empty).unwrap(), vec![]);

        // Width mismatch: both must refuse.
        let narrow = descs_flat(width, &vec![0.5; width]);
        let wide = descs_flat(width + 1, &vec![0.5; width + 1]);
        prop_assert!(knn_match_float(&narrow, &wide).is_err());
        prop_assert!(knn_match_float_naive(&narrow, &wide).is_err());

        let bempty = BinaryDescriptors::new(width);
        let bone = bdescs_flat(width, &vec![0xA5; width]);
        prop_assert_eq!(knn_match_binary(&bempty, &bone).unwrap(), vec![]);
        prop_assert_eq!(knn_match_binary(&bone, &bempty).unwrap(), vec![]);
        let bwide = bdescs_flat(width + 1, &vec![0xA5; width + 1]);
        prop_assert!(knn_match_binary(&bone, &bwide).is_err());
        prop_assert!(knn_match_binary_naive(&bone, &bwide).is_err());
    }
}

// ---------------------------------------------------------------------------
// ANN index equivalence. MIH is exact by construction (the pigeonhole
// bound), so it must be bit-identical to the naive Hamming oracle on ANY
// input, at ANY substring width. HNSW degenerates to the exact scalar
// scan whenever `ef >= n`, so a saturating ef must be bit-identical to
// the naive L2 oracle — including its NaN-quarantine placeholders.
// ---------------------------------------------------------------------------

use taor_features::{HnswIndex, HnswParams, MihIndex, MihParams};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn mih_knn_match_is_bit_identical_to_naive(
        qflat in proptest::collection::vec(any::<u8>(), 18 * 32),
        tflat in proptest::collection::vec(any::<u8>(), 15 * 32),
        // Substring widths past ~16 bits are legal but combinatorially
        // explosive on far queries (the radius sweep enumerates C(wb, r)
        // keys per table): exactness holds at any width, but the test
        // stays at the widths the index is actually usable at.
        wb in 1u32..=16,
    ) {
        let q = bdescs_flat(32, &qflat);
        let t = bdescs_flat(32, &tflat);
        let index = MihIndex::build(t.clone(), MihParams { substring_bits: wb }).unwrap();
        let naive = knn_match_binary_naive(&q, &t).unwrap();
        prop_assert_eq!(index.knn_match(&q).unwrap(), naive);
    }

    #[test]
    fn mih_is_exact_on_tie_heavy_codes(
        qpick in proptest::collection::vec(0usize..4, 20),
        tpick in proptest::collection::vec(0usize..4, 24),
    ) {
        // Four code words shared by every row: massive distance ties, so
        // first-index-wins must agree exactly with the ascending scan.
        let palette: [[u8; 8]; 4] =
            [[0x00; 8], [0xFF; 8], [0xA5; 8], [0x0F; 8]];
        let qflat: Vec<u8> = qpick.iter().flat_map(|&i| palette[i]).collect();
        let tflat: Vec<u8> = tpick.iter().flat_map(|&i| palette[i]).collect();
        let q = bdescs_flat(8, &qflat);
        let t = bdescs_flat(8, &tflat);
        let index = MihIndex::build(t.clone(), MihParams::default()).unwrap();
        let naive = knn_match_binary_naive(&q, &t).unwrap();
        prop_assert_eq!(index.knn_match(&q).unwrap(), naive);
    }

    #[test]
    fn hnsw_with_saturating_ef_is_bit_identical_to_naive(
        qflat in proptest::collection::vec(-4.0f32..4.0, 12 * 8),
        tflat in proptest::collection::vec(-4.0f32..4.0, 10 * 8),
        seed in any::<u64>(),
    ) {
        let q = descs_flat(8, &qflat);
        let t = descs_flat(8, &tflat);
        let params = HnswParams { ef_search: 1024, seed, ..HnswParams::default() };
        let index = HnswIndex::build(t.clone(), params).unwrap();
        let naive = knn_match_float_naive(&q, &t).unwrap();
        prop_assert_eq!(index.knn_match(&q).unwrap(), naive);
    }

    #[test]
    fn hnsw_saturating_ef_handles_poisoned_rows_like_naive(
        qflat in proptest::collection::vec(-4.0f32..4.0, 10 * 8),
        tflat in proptest::collection::vec(-4.0f32..4.0, 9 * 8),
        qbad in proptest::collection::vec(0usize..10 * 8, 1..6),
        tbad in proptest::collection::vec(0usize..9 * 8, 1..6),
        use_inf in 0u8..2,
    ) {
        let poison = if use_inf == 1 { f32::INFINITY } else { f32::NAN };
        let mut qflat = qflat;
        let mut tflat = tflat;
        for &i in &qbad {
            qflat[i] = poison;
        }
        for &i in &tbad {
            tflat[i] = poison;
        }
        let q = descs_flat(8, &qflat);
        let t = descs_flat(8, &tflat);
        let params = HnswParams { ef_search: 1024, ..HnswParams::default() };
        let index = HnswIndex::build(t.clone(), params).unwrap();
        let naive = knn_match_float_naive(&q, &t).unwrap();
        prop_assert_eq!(index.knn_match(&q).unwrap(), naive);
    }

    #[test]
    fn hnsw_build_is_seed_deterministic(
        tflat in proptest::collection::vec(-4.0f32..4.0, 12 * 6),
        qflat in proptest::collection::vec(-4.0f32..4.0, 3 * 6),
        seed in any::<u64>(),
    ) {
        let t = descs_flat(6, &tflat);
        let q = descs_flat(6, &qflat);
        let params = HnswParams { seed, ..HnswParams::default() };
        let a = HnswIndex::build(t.clone(), params).unwrap();
        let b = HnswIndex::build(t, params).unwrap();
        prop_assert_eq!(a.knn_match(&q).unwrap(), b.knn_match(&q).unwrap());
    }
}

// ---------------------------------------------------------------------------
// Recall on a clustered gallery: with the default search parameters the
// HNSW graph must place the true nearest neighbour first for ≥ 99 % of
// near-duplicate queries. Deterministic (splitmix-driven data), so this
// is a pinned bound rather than a statistical hope.
// ---------------------------------------------------------------------------

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn unit_f32(state: &mut u64) -> f32 {
    (splitmix(state) >> 40) as f32 / (1u64 << 24) as f32
}

#[test]
fn hnsw_recall_at_1_is_high_on_a_clustered_gallery() {
    use taor_features::{exact_knn_float, recall_at_k};

    const DIM: usize = 16;
    const CLUSTERS: usize = 40;
    const PER_CLUSTER: usize = 50; // 2,000 gallery rows
    const QUERIES: usize = 200;

    let mut state = 0xC0FF_EE00u64;
    let centers: Vec<Vec<f32>> =
        (0..CLUSTERS).map(|_| (0..DIM).map(|_| unit_f32(&mut state) * 10.0).collect()).collect();
    let mut gallery = FloatDescriptors::new(DIM);
    for c in &centers {
        for _ in 0..PER_CLUSTER {
            let row: Vec<f32> = c.iter().map(|&v| v + (unit_f32(&mut state) - 0.5)).collect();
            gallery.push(&row);
        }
    }
    let index = HnswIndex::build(gallery.clone(), HnswParams::default()).unwrap();

    let mut hits = 0usize;
    for qi in 0..QUERIES {
        let base = gallery.row((qi * 7) % gallery.len()).to_vec();
        let query: Vec<f32> =
            base.iter().map(|&v| v + (unit_f32(&mut state) - 0.5) * 0.02).collect();
        let approx = index.search(&query, 1);
        let exact = exact_knn_float(&query, &gallery, 1);
        if recall_at_k(&approx, &exact, 1) >= 1.0 {
            hits += 1;
        }
    }
    let recall = hits as f64 / QUERIES as f64;
    assert!(recall >= 0.99, "recall@1 = {recall} over {QUERIES} queries");
}
