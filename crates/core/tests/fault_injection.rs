//! Fault-injection suite for the inference core.
//!
//! Drives all five pipelines over the adversarial corpus (1×1 slivers,
//! constant-colour crops, sensor noise, NaN-poisoned scorers, empty
//! reference catalogs) and asserts the hardening contract: **no panics,
//! well-formed outputs, degradation counted** — never good accuracy.

use proptest::prelude::*;
use std::sync::OnceLock;
use taor_core::prelude::*;
use taor_core::Error;
use taor_data::{catalog_custom, Dataset, DatasetKind, LabeledImage, ObjectClass};
use taor_imgproc::histogram::HistCompare;
use taor_imgproc::moments::MatchShapesMode;
use taor_imgproc::RgbImage;
use taor_nn::{NetConfig, NormXCorrNet};

/// A small but real reference catalog (1 model x 2 views per class),
/// shared across cases so proptest iterations stay cheap.
fn ref_catalog() -> &'static Dataset {
    static CAT: OnceLock<Dataset> = OnceLock::new();
    CAT.get_or_init(|| catalog_custom(2019, 1, 2))
}

fn ref_views() -> &'static [RefView] {
    static VIEWS: OnceLock<Vec<RefView>> = OnceLock::new();
    VIEWS.get_or_init(|| prepare_views(ref_catalog(), Background::White))
}

fn ref_orb() -> &'static DescriptorIndex {
    static IDX: OnceLock<DescriptorIndex> = OnceLock::new();
    IDX.get_or_init(|| extract_index(ref_catalog(), DescriptorKind::Orb))
}

fn untrained_net() -> &'static (NormXCorrNet, NetConfig) {
    static NET: OnceLock<(NormXCorrNet, NetConfig)> = OnceLock::new();
    NET.get_or_init(|| {
        let cfg = NetConfig {
            height: 32,
            width: 24,
            c1: 2,
            c2: 2,
            c3: 2,
            dense: 4,
            ..NetConfig::default()
        };
        let net = NormXCorrNet::new(cfg.clone()).expect("32x24 fits the architecture");
        (net, cfg)
    })
}

fn constant_img(w: u32, h: u32, px: [u8; 3]) -> RgbImage {
    let mut img = RgbImage::new(w, h);
    for y in 0..h {
        for x in 0..w {
            img.put_pixel(x, y, px);
        }
    }
    img
}

fn query_of(img: &RgbImage) -> RefView {
    RefView {
        class: ObjectClass::Box, // placeholder truth; the harness checks shape, not accuracy
        model_id: 0,
        feat: preprocess(img, Background::Black, HIST_BINS),
    }
}

// ---------------------------------------------------------------------
// The full harness: every pipeline, the whole corpus, one report.
// ---------------------------------------------------------------------

#[test]
fn all_pipelines_survive_the_adversarial_corpus() {
    let report = run_fault_injection(ref_catalog());
    assert!(report.no_panics(), "pipelines panicked: {:?}", report.failures());
    assert!(report.all_well_formed(), "malformed outputs: {:?}", report.failures());
    // The corpus is built to trigger quarantine/fallback paths; a fully
    // clean ledger would mean the counters are not wired through.
    assert!(
        !report.diagnostics.is_clean(),
        "adversarial corpus should exercise the degradation counters: {:?}",
        report.diagnostics
    );
}

// ---------------------------------------------------------------------
// The service boundary: raw byte buffers through the wire decoder, the
// decodable crops through every pipeline.
// ---------------------------------------------------------------------

#[test]
fn all_pipelines_survive_the_service_corpus() {
    let report = run_service_fault_injection(ref_catalog());
    assert!(report.no_panics(), "service pipelines panicked: {:?}", report.failures());
    assert!(report.all_well_formed(), "malformed service outputs: {:?}", report.failures());
}

#[test]
fn service_corpus_decodables_run_every_pipeline_individually() {
    // Beyond the aggregate harness: each decodable buffer, decoded by
    // hand, through shape, colour, hybrid, descriptors and siamese.
    let diag = Diagnostics::new();
    let (net, cfg) = untrained_net();
    let reference = image_to_tensor(&ref_catalog().images[0].image, cfg);
    for case in service_corpus() {
        let Ok((img, stats)) = decode_crop(&case.bytes) else { continue };
        if case.name == "nan_pixels_f32" {
            assert!(stats.nan_pixels > 0, "poisoned buffer must report quarantined samples");
        }
        let queries = [query_of(&img)];
        let shape = ShapeScorer { mode: MatchShapesMode::I3 };
        let color = ColorScorer { metric: HistCompare::Hellinger };
        assert_eq!(
            try_classify_per_view(&queries, ref_views(), &shape, &diag).unwrap().len(),
            1,
            "{}: shape-only",
            case.name
        );
        assert_eq!(
            try_classify_per_view(&queries, ref_views(), &color, &diag).unwrap().len(),
            1,
            "{}: color-only",
            case.name
        );
        for agg in Aggregation::ALL {
            let preds =
                try_classify_hybrid(&queries, ref_views(), &HybridConfig::default(), agg, &diag)
                    .unwrap();
            assert_eq!(preds.len(), 1, "{}: hybrid {}", case.name, agg.label());
        }
        let ds = Dataset {
            kind: DatasetKind::NyuSet,
            images: vec![LabeledImage {
                image: img.clone(),
                class: ObjectClass::Box,
                model_id: 0,
                view_id: 0,
            }],
        };
        let q_idx = extract_index(&ds, DescriptorKind::Orb);
        let preds = try_classify_descriptors(&q_idx, ref_orb(), 0.75, &diag).unwrap();
        assert_eq!(preds.len(), 1, "{}: descriptors", case.name);
        let t = image_to_tensor(&img, cfg);
        assert!(net.predict_similar(&t, &reference).is_ok(), "{}: siamese", case.name);
    }
}

#[test]
fn malformed_service_buffers_are_typed_wire_errors() {
    for case in service_corpus() {
        match (decode_crop(&case.bytes), case.expect) {
            (Ok(_), ServiceExpect::Decodes) => {}
            (Err(Error::Wire(_)), ServiceExpect::Rejected) => {}
            (res, expect) => {
                panic!("{}: expected {expect:?}, got {res:?}", case.name)
            }
        }
    }
}

// ---------------------------------------------------------------------
// NaN-injection regression: the eleven partial_cmp().expect() sorts used
// to panic on the first NaN; now NaNs rank last and are counted.
// ---------------------------------------------------------------------

#[test]
fn nan_scores_yield_a_ranking_instead_of_a_panic() {
    let queries: Vec<RefView> = adversarial_corpus().iter().map(|c| query_of(&c.image)).collect();
    let diag = Diagnostics::new();

    let top1 = try_classify_per_view(&queries, ref_views(), &NanScorer, &diag)
        .expect("NaN scores must degrade, not error");
    assert_eq!(top1.len(), queries.len());

    let ranked = try_classify_per_view_ranked(&queries, ref_views(), &NanScorer, &diag)
        .expect("NaN scores must degrade, not error");
    for perm in &ranked {
        assert_eq!(perm.len(), ObjectClass::COUNT, "ranking must cover every class");
        let mut seen = [false; ObjectClass::COUNT];
        for c in perm {
            seen[c.index()] = true;
        }
        assert!(seen.iter().all(|&s| s), "ranking must be a permutation: {perm:?}");
    }

    assert!(diag.nan_scores() > 0, "quarantined NaNs must be counted");
    assert!(diag.degraded() > 0, "all-NaN queries fall back and must be counted");
}

// ---------------------------------------------------------------------
// Empty reference catalogs: typed errors, never panics or fabricated
// predictions.
// ---------------------------------------------------------------------

#[test]
fn empty_catalogs_are_typed_errors() {
    let empty = Dataset { kind: DatasetKind::NyuSet, images: Vec::new() };
    let queries = vec![query_of(&constant_img(8, 8, [50, 90, 130]))];
    let diag = Diagnostics::new();

    assert!(matches!(
        Recognizer::try_new(&empty, Method::Hybrid(HybridConfig::default()), Background::Black),
        Err(Error::EmptyReference(_))
    ));
    assert!(matches!(
        try_classify_per_view(&queries, &[], &NanScorer, &diag),
        Err(Error::EmptyReference(_))
    ));
    assert!(matches!(
        try_classify_per_view_ranked(&queries, &[], &NanScorer, &diag),
        Err(Error::EmptyReference(_))
    ));
    assert!(matches!(
        try_classify_hybrid(
            &queries,
            &[],
            &HybridConfig::default(),
            Aggregation::WeightedSum,
            &diag
        ),
        Err(Error::EmptyReference(_))
    ));
    let empty_idx = extract_index(&empty, DescriptorKind::Orb);
    let q_idx = extract_index(ref_catalog(), DescriptorKind::Orb);
    assert!(matches!(
        try_classify_descriptors(&q_idx, &empty_idx, 0.75, &diag),
        Err(Error::EmptyReference(_))
    ));
}

// ---------------------------------------------------------------------
// Degenerate-input property tests: random tiny constant-colour crops
// through each of the five pipelines.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn tiny_crops_never_panic_the_matchers(
        (w, h, r, g, b) in (1u32..6, 1u32..6, 0u8..=255, 0u8..=255, 0u8..=255),
    ) {
        let queries = [query_of(&constant_img(w, h, [r, g, b]))];
        let diag = Diagnostics::new();
        let shape = ShapeScorer { mode: MatchShapesMode::I3 };
        let color = ColorScorer { metric: HistCompare::Hellinger };
        prop_assert_eq!(
            try_classify_per_view(&queries, ref_views(), &shape, &diag).unwrap().len(), 1
        );
        prop_assert_eq!(
            try_classify_per_view(&queries, ref_views(), &color, &diag).unwrap().len(), 1
        );
        for agg in Aggregation::ALL {
            let preds = try_classify_hybrid(
                &queries, ref_views(), &HybridConfig::default(), agg, &diag,
            ).unwrap();
            prop_assert_eq!(preds.len(), 1);
        }
    }

    #[test]
    fn tiny_crops_never_panic_descriptor_matching(
        (w, h, r, g, b) in (1u32..6, 1u32..6, 0u8..=255, 0u8..=255, 0u8..=255),
    ) {
        let ds = Dataset {
            kind: DatasetKind::NyuSet,
            images: vec![LabeledImage {
                image: constant_img(w, h, [r, g, b]),
                class: ObjectClass::Box,
                model_id: 0,
                view_id: 0,
            }],
        };
        let q_idx = extract_index(&ds, DescriptorKind::Orb);
        let diag = Diagnostics::new();
        let preds = try_classify_descriptors(&q_idx, ref_orb(), 0.75, &diag).unwrap();
        prop_assert_eq!(preds.len(), 1);
        // A featureless constant crop is a per-item fallback, not an abort.
        prop_assert!(diag.degraded() <= 1);
    }

    #[test]
    fn tiny_crops_never_panic_the_siamese_forward(
        (w, h, r, g, b) in (1u32..6, 1u32..6, 0u8..=255, 0u8..=255, 0u8..=255),
    ) {
        let (net, cfg) = untrained_net();
        let a = image_to_tensor(&constant_img(w, h, [r, g, b]), cfg);
        let b = image_to_tensor(&ref_catalog().images[0].image, cfg);
        let out = net.predict_similar(&a, &b);
        prop_assert!(out.is_ok(), "forward pass failed: {:?}", out.err());
    }

    #[test]
    fn tiny_frames_never_panic_segmentation(
        (w, h, r, g, b) in (1u32..6, 1u32..6, 0u8..=255, 0u8..=255, 0u8..=255),
    ) {
        let frame = constant_img(w, h, [r, g, b]);
        let cfg = SegmentConfig::default();
        // A degenerate frame may yield zero segments but must not panic,
        // and the empty background model stays a typed error.
        prop_assert!(try_segment_frame(&frame, &cfg).is_ok());
        let res = mask_against(&frame, &[], cfg.color_threshold);
        prop_assert!(matches!(res, Err(Error::EmptyInput("background color model"))));
    }
}
