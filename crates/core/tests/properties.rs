//! Property-based tests for evaluation metrics and pipeline invariants.

use proptest::prelude::*;
use taor_core::eval::{roc_auc, top_k_accuracy};
use taor_core::prelude::*;
use taor_data::ObjectClass;

fn arb_classes(len: usize) -> impl Strategy<Value = Vec<ObjectClass>> {
    proptest::collection::vec(0usize..ObjectClass::COUNT, len)
        .prop_map(|v| v.into_iter().map(|i| ObjectClass::from_index(i).unwrap()).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn accuracy_bounded_and_consistent(truth in arb_classes(40), preds in arb_classes(40)) {
        let e = evaluate(&truth, &preds);
        prop_assert!((0.0..=1.0).contains(&e.cumulative_accuracy));
        // Confusion-matrix marginals: rows sum to class supports; the
        // total equals the sample count.
        let total: usize = e.confusion.iter().flatten().sum();
        prop_assert_eq!(total, 40);
        for (c, m) in e.per_class.iter().enumerate() {
            let row_sum: usize = e.confusion[c].iter().sum();
            prop_assert_eq!(row_sum, m.support);
            prop_assert!((0.0..=1.0).contains(&m.recall));
            prop_assert!((0.0..=1.0).contains(&m.precision_std));
            prop_assert!(m.precision_paper <= m.recall + 1e-12,
                "paper precision can never exceed recall (divides by N >= support)");
        }
        // Cumulative accuracy equals the diagonal mass.
        let diag: usize = (0..ObjectClass::COUNT).map(|i| e.confusion[i][i]).sum();
        prop_assert!((e.cumulative_accuracy - diag as f64 / 40.0).abs() < 1e-12);
    }

    #[test]
    fn self_evaluation_is_perfect(truth in arb_classes(25)) {
        let e = evaluate(&truth, &truth);
        prop_assert_eq!(e.cumulative_accuracy, 1.0);
        for m in &e.per_class {
            if m.support > 0 {
                prop_assert_eq!(m.recall, 1.0);
                prop_assert_eq!(m.precision_std, 1.0);
            }
        }
    }

    #[test]
    fn binary_metrics_bounded(
        truth in proptest::collection::vec(0usize..2, 30),
        preds in proptest::collection::vec(0usize..2, 30),
    ) {
        let e = evaluate_binary(&truth, &preds);
        for m in [e.similar, e.dissimilar] {
            prop_assert!((0.0..=1.0).contains(&m.precision));
            prop_assert!((0.0..=1.0).contains(&m.recall));
            prop_assert!(m.f1 <= 1.0 + 1e-12);
            // F1 is bounded by min and max of P and R (harmonic mean).
            if m.precision > 0.0 && m.recall > 0.0 {
                prop_assert!(m.f1 >= m.precision.min(m.recall) - 1e-9);
                prop_assert!(m.f1 <= m.precision.max(m.recall) + 1e-9);
            }
        }
        prop_assert_eq!(e.similar.support + e.dissimilar.support, 30);
    }

    #[test]
    fn auc_is_invariant_to_monotone_transforms(
        truth in proptest::collection::vec(0usize..2, 20),
        scores in proptest::collection::vec(0.0f32..1.0, 20),
    ) {
        let a1 = roc_auc(&truth, &scores);
        let transformed: Vec<f32> = scores.iter().map(|&s| s * s * 10.0 + 1.0).collect();
        let a2 = roc_auc(&truth, &transformed);
        prop_assert!((a1 - a2).abs() < 1e-9, "AUC must be rank-based: {} vs {}", a1, a2);
        prop_assert!((0.0..=1.0).contains(&a1));
    }

    #[test]
    fn auc_flips_under_score_negation(
        truth in proptest::collection::vec(0usize..2, 16),
        scores in proptest::collection::vec(-5.0f32..5.0, 16),
    ) {
        let a = roc_auc(&truth, &scores);
        let neg: Vec<f32> = scores.iter().map(|&s| -s).collect();
        let b = roc_auc(&truth, &neg);
        prop_assert!((a + b - 1.0).abs() < 1e-9, "{} + {} != 1", a, b);
    }

    #[test]
    fn top_k_is_monotone(truth in arb_classes(12), seed in any::<u64>()) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let rankings: Vec<Vec<ObjectClass>> = (0..12)
            .map(|_| {
                let mut order: Vec<ObjectClass> = ObjectClass::ALL.to_vec();
                for i in (1..order.len()).rev() {
                    order.swap(i, rng.gen_range(0..=i));
                }
                order
            })
            .collect();
        let mut prev = 0.0;
        for k in 1..=ObjectClass::COUNT {
            let acc = top_k_accuracy(&truth, &rankings, k);
            prop_assert!(acc + 1e-12 >= prev);
            prev = acc;
        }
        prop_assert_eq!(prev, 1.0, "top-10 over 10 classes must be 1");
    }

    #[test]
    fn iou_bounded_and_symmetric(
        ax in 0u32..50, ay in 0u32..50, aw in 1u32..30, ah in 1u32..30,
        bx in 0u32..50, by in 0u32..50, bw in 1u32..30, bh in 1u32..30,
    ) {
        let a = taor_imgproc::Rect::new(ax, ay, aw, ah);
        let b = taor_imgproc::Rect::new(bx, by, bw, bh);
        let v = iou(&a, &b);
        prop_assert!((0.0..=1.0).contains(&v));
        prop_assert!((v - iou(&b, &a)).abs() < 1e-12);
        prop_assert_eq!(iou(&a, &a), 1.0);
    }

    #[test]
    fn random_baseline_deterministic_and_bounded(truth in arb_classes(60), seed in any::<u64>()) {
        let p1 = random_baseline(&truth, seed);
        let p2 = random_baseline(&truth, seed);
        prop_assert_eq!(&p1, &p2);
        let e = evaluate(&truth, &p1);
        prop_assert!(e.cumulative_accuracy < 0.55, "baseline suspiciously strong");
    }
}
