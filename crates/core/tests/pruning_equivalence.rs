//! Pins the early-abandon pruning contract: the tiled, bounded classify
//! loops must produce **byte-identical** predictions to an unpruned
//! argmin scan, for every shape and colour scorer, on the canonical
//! SNS1-vs-SNS2 matching task.
//!
//! The reference implementations below deliberately re-derive the
//! original (seed) semantics from the public `score` method alone: plain
//! first-seen argmin over views in order, no bound, no tiling.

use taor_core::pipeline::{
    classify_per_view, classify_per_view_ranked, prepare_views, MatchScorer, RefView,
};
use taor_core::preprocess::Background;
use taor_core::{ColorScorer, ShapeScorer};
use taor_data::{shapenet_set1, shapenet_set2, ObjectClass};

const SEED: u64 = 2019;

/// Unpruned reference: the seed's exact per-view argmin.
fn classify_reference(
    queries: &[RefView],
    views: &[RefView],
    scorer: &dyn MatchScorer,
) -> Vec<ObjectClass> {
    queries
        .iter()
        .map(|q| {
            let mut best = f64::INFINITY;
            let mut best_class = views[0].class;
            for v in views {
                let s = scorer.score(&q.feat, &v.feat);
                if s < best {
                    best = s;
                    best_class = v.class;
                }
            }
            best_class
        })
        .collect()
}

/// Unpruned reference for the ranked variant.
fn classify_ranked_reference(
    queries: &[RefView],
    views: &[RefView],
    scorer: &dyn MatchScorer,
) -> Vec<Vec<ObjectClass>> {
    queries
        .iter()
        .map(|q| {
            let mut best = [f64::INFINITY; ObjectClass::COUNT];
            for v in views {
                let s = scorer.score(&q.feat, &v.feat);
                let i = v.class.index();
                if s < best[i] {
                    best[i] = s;
                }
            }
            let mut order: Vec<usize> = (0..ObjectClass::COUNT).collect();
            order.sort_by(|&a, &b| best[a].partial_cmp(&best[b]).expect("finite or inf"));
            order
                .into_iter()
                .map(|i| ObjectClass::from_index(i).expect("index below COUNT"))
                .collect()
        })
        .collect()
}

fn all_scorers() -> Vec<Box<dyn MatchScorer>> {
    let mut scorers: Vec<Box<dyn MatchScorer>> = Vec::new();
    for s in ShapeScorer::ALL {
        scorers.push(Box::new(s));
    }
    for s in ColorScorer::ALL {
        scorers.push(Box::new(s));
    }
    scorers
}

#[test]
fn pruned_classification_is_byte_identical_on_sns1_vs_sns2() {
    let q = prepare_views(&shapenet_set1(SEED), Background::White);
    let r = prepare_views(&shapenet_set2(SEED), Background::White);
    for scorer in all_scorers() {
        let pruned = classify_per_view(&q, &r, scorer.as_ref());
        let reference = classify_reference(&q, &r, scorer.as_ref());
        assert_eq!(pruned, reference, "{} diverged under pruning", scorer.name());
    }
}

#[test]
fn pruned_ranking_is_byte_identical_on_sns1_vs_sns2() {
    let q = prepare_views(&shapenet_set1(SEED), Background::White);
    let r = prepare_views(&shapenet_set2(SEED), Background::White);
    for scorer in all_scorers() {
        let pruned = classify_per_view_ranked(&q, &r, scorer.as_ref());
        let reference = classify_ranked_reference(&q, &r, scorer.as_ref());
        assert_eq!(pruned, reference, "{} ranking diverged under pruning", scorer.name());
    }
}

#[test]
fn score_bounded_is_exact_below_the_bound() {
    // Direct contract check on a sample of pairs: whenever the bounded
    // result is below the bound it must equal the full score.
    let q = prepare_views(&shapenet_set1(SEED), Background::White);
    let r = prepare_views(&shapenet_set2(SEED), Background::White);
    for scorer in all_scorers() {
        for (i, qv) in q.iter().take(8).enumerate() {
            for rv in r.iter().skip(i).step_by(11) {
                let full = scorer.score(&qv.feat, &rv.feat);
                for bound in [full * 0.5, full, full * 1.5, f64::INFINITY] {
                    let b = scorer.score_bounded(&qv.feat, &rv.feat, bound);
                    if b < bound {
                        assert_eq!(b, full, "{}: inexact below bound", scorer.name());
                    } else {
                        assert!(b >= bound, "{}: result neither exact nor >= bound", scorer.name());
                    }
                }
            }
        }
    }
}
