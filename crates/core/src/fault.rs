//! Fault-injection harness for the inference core.
//!
//! A mobile robot's segmentation front-end hands the recognition
//! pipelines whatever the scene produces: one-pixel slivers, constant
//! crops from over-exposed frames, sensor noise, or nothing at all. The
//! paper's controlled experiments never exercised those inputs; this
//! module makes them a first-class test target. [`adversarial_corpus`]
//! builds the degenerate crops, [`NanScorer`] poisons the match scores,
//! and [`run_fault_injection`] drives all five pipelines over them
//! under `catch_unwind`, reporting per-pipeline outcomes and the
//! degradation counters — the contract is *no panics, well-formed
//! outputs*, not good accuracy.

use std::panic::{catch_unwind, AssertUnwindSafe};

use crate::color_only::ColorScorer;
use crate::descriptors::{extract_index, try_classify_descriptors, DescriptorKind};
use crate::diag::{Diagnostics, DiagnosticsReport};
use crate::error::Error;
use crate::hybrid::{try_classify_hybrid, Aggregation, HybridConfig};
use crate::pipeline::{
    prepare_views, try_classify_per_view, try_classify_per_view_ranked, MatchScorer, RefView,
};
use crate::preprocess::{Background, Preprocessed};
use crate::shape_only::ShapeScorer;
use crate::siamese::image_to_tensor;
use crate::wire;
use rand::{Rng, SeedableRng};
use taor_data::{Dataset, DatasetKind, LabeledImage, ObjectClass};
use taor_imgproc::histogram::HistCompare;
use taor_imgproc::image::RgbImage;
use taor_imgproc::moments::MatchShapesMode;
use taor_nn::{NetConfig, NormXCorrNet, TensorError};

/// One named degenerate input.
#[derive(Debug, Clone)]
pub struct AdversarialCase {
    /// Short name used in failure reports.
    pub name: &'static str,
    /// The crop itself.
    pub image: RgbImage,
}

fn constant(w: u32, h: u32, px: [u8; 3]) -> RgbImage {
    let mut img = RgbImage::new(w, h);
    for y in 0..h {
        for x in 0..w {
            img.put_pixel(x, y, px);
        }
    }
    img
}

/// The degenerate-crop corpus: everything a broken segmenter can emit.
///
/// Deterministic (fixed seed for the noise case) so failures reproduce.
pub fn adversarial_corpus() -> Vec<AdversarialCase> {
    let mut salt_pepper = RgbImage::new(32, 32);
    let mut rng = rand::rngs::SmallRng::seed_from_u64(0xFAu64);
    for y in 0..32 {
        for x in 0..32 {
            let v = if rng.gen_bool(0.5) { 255 } else { 0 };
            salt_pepper.put_pixel(x, y, [v, v, v]);
        }
    }
    let mut gradient = RgbImage::new(48, 48);
    for y in 0..48u32 {
        for x in 0..48u32 {
            gradient.put_pixel(x, y, [(x * 5) as u8, (y * 5) as u8, ((x + y) * 2) as u8]);
        }
    }
    vec![
        AdversarialCase { name: "1x1_black", image: RgbImage::new(1, 1) },
        AdversarialCase { name: "1x1_white", image: constant(1, 1, [255, 255, 255]) },
        AdversarialCase { name: "2x2_gray", image: constant(2, 2, [128, 128, 128]) },
        AdversarialCase { name: "all_black_32", image: RgbImage::new(32, 32) },
        AdversarialCase { name: "all_white_32", image: constant(32, 32, [255, 255, 255]) },
        AdversarialCase { name: "mid_gray_64", image: constant(64, 64, [127, 127, 127]) },
        AdversarialCase { name: "strip_1x64", image: constant(1, 64, [90, 30, 200]) },
        AdversarialCase { name: "strip_64x1", image: constant(64, 1, [10, 250, 40]) },
        AdversarialCase { name: "salt_pepper_32", image: salt_pepper },
        AdversarialCase { name: "gradient_48", image: gradient },
    ]
}

/// A [`MatchScorer`] stub that poisons every comparison with NaN —
/// models a distance function dividing by a zero norm.
pub struct NanScorer;

impl MatchScorer for NanScorer {
    fn score(&self, _query: &Preprocessed, _view: &Preprocessed) -> f64 {
        f64::NAN
    }
    fn name(&self) -> String {
        "NaN-stub".into()
    }
}

/// Outcome of driving one pipeline over the adversarial corpus.
#[derive(Debug, Clone, serde::Serialize)]
pub struct PipelineOutcome {
    /// Pipeline label ("shape-only", "color-only", ...).
    pub pipeline: &'static str,
    /// Whether the pipeline panicked (the one unacceptable outcome).
    pub panicked: bool,
    /// Whether the output was well-formed: one prediction per query (or
    /// a typed error for structurally impossible requests).
    pub well_formed: bool,
    /// Human-readable detail on failure.
    pub detail: String,
}

/// Aggregate result of a fault-injection run.
#[derive(Debug, Clone, serde::Serialize)]
pub struct FaultReport {
    /// Per-pipeline outcomes.
    pub outcomes: Vec<PipelineOutcome>,
    /// Degradation counters accumulated across every pipeline driven.
    pub diagnostics: DiagnosticsReport,
}

impl FaultReport {
    /// Whether no pipeline panicked.
    pub fn no_panics(&self) -> bool {
        self.outcomes.iter().all(|o| !o.panicked)
    }

    /// Whether every pipeline produced well-formed output.
    pub fn all_well_formed(&self) -> bool {
        self.outcomes.iter().all(|o| o.well_formed)
    }

    /// Names of pipelines that panicked or produced malformed output.
    pub fn failures(&self) -> Vec<String> {
        self.outcomes
            .iter()
            .filter(|o| o.panicked || !o.well_formed)
            .map(|o| format!("{}: {}", o.pipeline, o.detail))
            .collect()
    }
}

/// Run one pipeline closure under `catch_unwind`, normalising the
/// outcome. The closure returns `Ok(detail)` when its output was
/// well-formed and `Err(detail)` otherwise.
fn drive(
    pipeline: &'static str,
    f: impl FnOnce() -> std::result::Result<String, String>,
) -> PipelineOutcome {
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(Ok(detail)) => PipelineOutcome { pipeline, panicked: false, well_formed: true, detail },
        Ok(Err(detail)) => {
            PipelineOutcome { pipeline, panicked: false, well_formed: false, detail }
        }
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".into());
            PipelineOutcome {
                pipeline,
                panicked: true,
                well_formed: false,
                detail: format!("panicked: {msg}"),
            }
        }
    }
}

/// Check a `try_*` batch result: every query answered, or a typed error.
fn check_batch<T>(
    res: crate::error::Result<Vec<T>>,
    n_queries: usize,
) -> std::result::Result<String, String> {
    match res {
        Ok(preds) if preds.len() == n_queries => Ok(format!("{n_queries} queries answered")),
        Ok(preds) => Err(format!("{} predictions for {} queries", preds.len(), n_queries)),
        Err(e) => Err(format!("unexpected error: {e}")),
    }
}

/// A corpus as a query dataset (labels are irrelevant; the harness
/// checks shape, not accuracy).
fn images_to_dataset(images: Vec<RgbImage>) -> Dataset {
    let images = images
        .into_iter()
        .enumerate()
        .map(|(i, image)| LabeledImage {
            image,
            class: ObjectClass::from_index(i % ObjectClass::COUNT).unwrap_or(ObjectClass::Box),
            model_id: i,
            view_id: 0,
        })
        .collect();
    Dataset { kind: DatasetKind::NyuSet, images }
}

fn corpus_dataset() -> Dataset {
    images_to_dataset(adversarial_corpus().into_iter().map(|c| c.image).collect())
}

/// Drive all five pipelines over the adversarial corpus against
/// `catalog` as the reference set, plus the NaN-score stub and the
/// empty-reference error paths. Returns the per-pipeline outcomes and
/// accumulated degradation counters; it never panics itself.
pub fn run_fault_injection(catalog: &Dataset) -> FaultReport {
    let diag = Diagnostics::new();
    let crops = corpus_dataset();
    let mut outcomes = drive_pipelines(&crops, catalog, &diag);
    outcomes.extend(drive_stubs(&crops, catalog, &diag));
    FaultReport { outcomes, diagnostics: diag.report() }
}

/// The five real pipelines over an arbitrary query dataset.
fn drive_pipelines(crops: &Dataset, catalog: &Dataset, diag: &Diagnostics) -> Vec<PipelineOutcome> {
    let queries = prepare_views(crops, Background::Black);
    let refs = prepare_views(catalog, Background::White);
    let n = queries.len();
    let mut outcomes = Vec::new();

    // (i) shape-only and (ii) colour-only: per-view argmin matching.
    let shape = ShapeScorer { mode: MatchShapesMode::I3 };
    outcomes.push(drive("shape-only", || {
        check_batch(try_classify_per_view(&queries, &refs, &shape, diag), n)
    }));
    let color = ColorScorer { metric: HistCompare::Hellinger };
    outcomes.push(drive("color-only", || {
        check_batch(try_classify_per_view(&queries, &refs, &color, diag), n)
    }));

    // (iii) hybrid, every aggregation rule.
    let hybrid_cfg = HybridConfig::default();
    for agg in Aggregation::ALL {
        outcomes.push(drive(agg.label(), || {
            check_batch(try_classify_hybrid(&queries, &refs, &hybrid_cfg, agg, diag), n)
        }));
    }

    // (iv) descriptor matching (ORB: the cheapest family; featureless
    // constant crops must fall back, not abort).
    outcomes.push(drive("descriptors-orb", || {
        let q_idx = extract_index(crops, DescriptorKind::Orb);
        let r_idx = extract_index(catalog, DescriptorKind::Orb);
        check_batch(try_classify_descriptors(&q_idx, &r_idx, 0.75, diag), n)
    }));

    // (v) siamese: an untrained Normalized-X-Corr forward pass over every
    // query crop (resize + tensorise + full net), plus the
    // undersized-input error path.
    outcomes.push(drive("siamese-forward", || {
        let cfg = NetConfig {
            height: 32,
            width: 24,
            c1: 4,
            c2: 4,
            c3: 4,
            dense: 8,
            ..NetConfig::default()
        };
        let net = NormXCorrNet::new(cfg.clone()).map_err(|e| format!("constructor: {e}"))?;
        let reference_img =
            catalog.images.first().map(|i| &i.image).ok_or("catalog has no images")?;
        let reference = image_to_tensor(reference_img, &cfg);
        for (i, labeled) in crops.images.iter().enumerate() {
            let t = image_to_tensor(&labeled.image, &cfg);
            net.predict_similar(&t, &reference)
                .map_err(|e| format!("crop #{i}: forward failed: {e}"))?;
        }
        match NormXCorrNet::new(NetConfig { height: 6, width: 6, ..cfg }) {
            Err(TensorError::InputTooSmall { .. }) => {
                Ok("forward pass survived the corpus; undersized input is typed".into())
            }
            Err(e) => Err(format!("wrong error for undersized input: {e}")),
            Ok(_) => Err("6x6 input unexpectedly accepted".into()),
        }
    }));

    outcomes
}

/// The score-poisoning and empty-reference stubs: failure modes that
/// live below the image boundary.
fn drive_stubs(crops: &Dataset, _catalog: &Dataset, diag: &Diagnostics) -> Vec<PipelineOutcome> {
    let queries = prepare_views(crops, Background::Black);
    let refs = prepare_views(crops, Background::White);
    let n = queries.len();
    let shape = ShapeScorer { mode: MatchShapesMode::I3 };
    let mut outcomes = Vec::new();

    // NaN-score stub: ranking must quarantine, not panic.
    outcomes.push(drive("nan-scorer", || {
        let top1 = try_classify_per_view(&queries, &refs, &NanScorer, diag);
        let ranked = try_classify_per_view_ranked(&queries, &refs, &NanScorer, diag);
        check_batch(top1, n)?;
        match ranked {
            Ok(r) if r.iter().all(|perm| perm.len() == ObjectClass::COUNT) => {
                Ok("NaN scores quarantined in top-1 and ranked outputs".into())
            }
            Ok(_) => Err("ranked output is not a full class permutation".into()),
            Err(e) => Err(format!("unexpected error: {e}")),
        }
    }));

    // Empty reference catalog: a typed error, never a panic or a guess.
    outcomes.push(drive("empty-reference", || {
        match try_classify_per_view(&queries, &[], &shape, diag) {
            Err(Error::EmptyReference(_)) => Ok("empty reference set rejected".into()),
            Err(e) => Err(format!("wrong error kind: {e}")),
            Ok(_) => Err("empty reference set produced predictions".into()),
        }
    }));

    outcomes
}

/// Narrow helper for tests: prepared views of the adversarial corpus.
pub fn adversarial_views() -> Vec<RefView> {
    prepare_views(&corpus_dataset(), Background::Black)
}

// ---------------------------------------------------------------------------
// Service-shaped corpus: raw byte buffers, as a client would POST them.
// ---------------------------------------------------------------------------

/// Expected wire-boundary outcome for a service-shaped buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceExpect {
    /// Decodes into a usable crop (possibly with quarantined samples).
    Decodes,
    /// Rejected at the wire boundary with a typed [`WireError`].
    ///
    /// [`WireError`]: crate::wire::WireError
    Rejected,
}

/// One named service-shaped input: the exact bytes a client would put
/// in a request body.
#[derive(Debug, Clone)]
pub struct ServiceCase {
    /// Short name used in failure reports.
    pub name: &'static str,
    /// The raw body bytes.
    pub bytes: Vec<u8>,
    /// What the wire decoder must do with them.
    pub expect: ServiceExpect,
}

/// A bare wire header with the given format tag and dimensions.
fn wire_header(format_tag: u8, width: u32, height: u32) -> Vec<u8> {
    let mut out = Vec::with_capacity(wire::WIRE_HEADER_LEN);
    out.extend_from_slice(&wire::WIRE_MAGIC);
    out.push(wire::WIRE_VERSION);
    out.push(format_tag);
    out.extend_from_slice(&width.to_le_bytes());
    out.extend_from_slice(&height.to_le_bytes());
    out
}

/// The service-shaped corpus: everything a hostile, buggy or flaky
/// client can put on the wire. Deterministic, so failures reproduce.
pub fn service_corpus() -> Vec<ServiceCase> {
    let mut gradient = RgbImage::new(48, 48);
    for y in 0..48u32 {
        for x in 0..48u32 {
            gradient.put_pixel(x, y, [(x * 5) as u8, (y * 5) as u8, ((x + y) * 2) as u8]);
        }
    }
    let valid = wire::encode_rgb8(&gradient);

    // An 8x8 float crop with a repeating ramp, poisoned with NaN and
    // infinity every seventh sample.
    let poisoned: Vec<f32> = (0..8 * 8 * 3)
        .map(|i| match i % 7 {
            0 => f32::NAN,
            3 => f32::INFINITY,
            _ => (i % 192) as f32 / 191.0,
        })
        .collect();
    let clean_f32: Vec<f32> = (0..8 * 8 * 3).map(|i| (i % 192) as f32 / 191.0).collect();

    let mut truncated_header = valid.clone();
    truncated_header.truncate(7);
    let mut truncated_payload = valid.clone();
    truncated_payload.truncate(valid.len() - 3);
    let mut trailing = valid.clone();
    trailing.extend_from_slice(&[0u8; 5]);
    let mut bad_magic = valid.clone();
    bad_magic[0] = b'X';
    let mut bad_version = valid.clone();
    bad_version[4] = 0;

    let mut bad_format = wire_header(9, 4, 4);
    bad_format.extend_from_slice(&[0u8; 4 * 4 * 3]);

    vec![
        ServiceCase { name: "valid_rgb8", bytes: valid, expect: ServiceExpect::Decodes },
        ServiceCase {
            name: "valid_f32",
            bytes: wire::encode_f32(8, 8, &clean_f32),
            expect: ServiceExpect::Decodes,
        },
        ServiceCase {
            name: "nan_pixels_f32",
            bytes: wire::encode_f32(8, 8, &poisoned),
            expect: ServiceExpect::Decodes,
        },
        ServiceCase { name: "empty_body", bytes: Vec::new(), expect: ServiceExpect::Rejected },
        ServiceCase {
            name: "truncated_header",
            bytes: truncated_header,
            expect: ServiceExpect::Rejected,
        },
        ServiceCase {
            name: "truncated_payload",
            bytes: truncated_payload,
            expect: ServiceExpect::Rejected,
        },
        ServiceCase { name: "trailing_bytes", bytes: trailing, expect: ServiceExpect::Rejected },
        ServiceCase {
            name: "zero_dimension_header",
            bytes: wire_header(0, 0, 16),
            expect: ServiceExpect::Rejected,
        },
        ServiceCase {
            name: "oversized_dims_header",
            bytes: wire_header(0, wire::MAX_WIRE_DIM + 1, 1),
            expect: ServiceExpect::Rejected,
        },
        ServiceCase { name: "bad_magic", bytes: bad_magic, expect: ServiceExpect::Rejected },
        ServiceCase { name: "bad_version", bytes: bad_version, expect: ServiceExpect::Rejected },
        ServiceCase { name: "bad_format_tag", bytes: bad_format, expect: ServiceExpect::Rejected },
    ]
}

/// Drive the service boundary under fault: decode every corpus buffer,
/// asserting typed rejection for the malformed ones, then push every
/// decodable crop through all five recognition pipelines. Never panics
/// itself.
pub fn run_service_fault_injection(catalog: &Dataset) -> FaultReport {
    let diag = Diagnostics::new();
    let mut outcomes = Vec::new();
    let mut decoded: Vec<RgbImage> = Vec::new();
    for case in service_corpus() {
        let ServiceCase { name, bytes, expect } = case;
        let dec = &mut decoded;
        outcomes.push(drive(name, move || match (wire::decode_crop(&bytes), expect) {
            (Ok((img, stats)), ServiceExpect::Decodes) => {
                dec.push(img);
                Ok(format!("decoded ({} samples quarantined)", stats.nan_pixels))
            }
            (Ok(_), ServiceExpect::Rejected) => Err("malformed buffer decoded successfully".into()),
            (Err(Error::Wire(e)), ServiceExpect::Rejected) => Ok(format!("rejected: {e}")),
            (Err(e), ServiceExpect::Rejected) => Err(format!("wrong error kind: {e}")),
            (Err(e), ServiceExpect::Decodes) => Err(format!("unexpected rejection: {e}")),
        }));
    }
    let crops = images_to_dataset(decoded);
    outcomes.extend(drive_pipelines(&crops, catalog, &diag));
    outcomes.extend(drive_stubs(&crops, catalog, &diag));
    FaultReport { outcomes, diagnostics: diag.report() }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_covers_the_degenerate_shapes() {
        let corpus = adversarial_corpus();
        assert!(corpus.len() >= 8);
        assert!(corpus.iter().any(|c| c.image.dimensions() == (1, 1)));
        assert!(corpus.iter().any(|c| c.image.dimensions().0 == 1 && c.image.dimensions().1 > 1));
        assert!(corpus.iter().any(|c| c.image.dimensions().1 == 1 && c.image.dimensions().0 > 1));
        // Deterministic: two builds agree pixel for pixel.
        let again = adversarial_corpus();
        for (a, b) in corpus.iter().zip(&again) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.image.as_raw(), b.image.as_raw());
        }
    }

    #[test]
    fn nan_scorer_scores_nan() {
        let views = adversarial_views();
        assert!(NanScorer.score(&views[0].feat, &views[0].feat).is_nan());
    }

    #[test]
    fn service_corpus_is_deterministic_and_covers_both_outcomes() {
        let corpus = service_corpus();
        assert!(corpus.len() >= 10);
        assert!(corpus.iter().any(|c| c.expect == ServiceExpect::Decodes));
        assert!(corpus.iter().filter(|c| c.expect == ServiceExpect::Rejected).count() >= 6);
        let again = service_corpus();
        for (a, b) in corpus.iter().zip(&again) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.bytes, b.bytes);
        }
    }

    #[test]
    fn service_decode_outcomes_match_expectations() {
        for case in service_corpus() {
            let res = wire::decode_crop(&case.bytes);
            match case.expect {
                ServiceExpect::Decodes => {
                    assert!(res.is_ok(), "{} failed to decode: {res:?}", case.name)
                }
                ServiceExpect::Rejected => assert!(
                    matches!(res, Err(Error::Wire(_))),
                    "{} was not rejected with a wire error",
                    case.name
                ),
            }
        }
    }
}
