// taor-lint: allow(panic::index) — dense numeric kernel: indices are derived from dimensions validated at the public boundary and bounded by the enclosing loops.
//! Shared machinery of the matching pipelines.
//!
//! The paper frames classification as: "a set of K Shapenet models, Mc,
//! is defined for c = 1..N object classes … Each input object to classify
//! is thus matched against each single view vj ∈ Vi, for all K models,
//! and for all N classes. The mi determining the predicted label is then
//! the argument optimising either a certain similarity or distance
//! function."
//!
//! [`prepare_views`] preprocesses a dataset once; a [`MatchScorer`] turns
//! a (query, view) pair into a *distance* (lower = more similar);
//! [`classify_per_view`] predicts by argmin over every reference view.

use crate::diag::Diagnostics;
use crate::error::{Error, Result};
use crate::preprocess::{preprocess, Background, Preprocessed, HIST_BINS};
use rayon::prelude::*;
use taor_data::{Dataset, ObjectClass};
use taor_imgproc::cmp::nan_last_f64;

/// One preprocessed reference view (or query crop).
#[derive(Debug, Clone)]
pub struct RefView {
    pub class: ObjectClass,
    pub model_id: usize,
    pub feat: Preprocessed,
}

/// Preprocess every image of a dataset under the given background
/// convention (parallel).
pub fn prepare_views(dataset: &Dataset, bg: Background) -> Vec<RefView> {
    dataset
        .images
        .par_iter()
        .map(|img| RefView {
            class: img.class,
            model_id: img.model_id,
            feat: preprocess(&img.image, bg, HIST_BINS),
        })
        .collect()
}

/// A (query, view) distance function. Implementations must be cheap and
/// thread-safe — the full NYU-vs-SNS1 run evaluates ~570 k pairs.
pub trait MatchScorer: Sync {
    /// Distance between a query and a reference view; lower = better.
    fn score(&self, query: &Preprocessed, view: &Preprocessed) -> f64;

    /// Distance with early abandon. **Contract:** the result must be
    /// exact whenever it is `< bound`; when the true distance is
    /// `≥ bound` the implementation may stop early and return any value
    /// `≥ bound`. Argmin searches that pass their running best as
    /// `bound` and compare with strict `<` therefore see identical
    /// decisions — a pruned candidate could never have replaced the
    /// incumbent. The default computes the full distance.
    fn score_bounded(&self, query: &Preprocessed, view: &Preprocessed, bound: f64) -> f64 {
        let _ = bound;
        self.score(query, view)
    }

    /// Human-readable configuration name for reports.
    fn name(&self) -> String;
}

/// Reference views scanned per tile of the distance-matrix loops: small
/// enough that a tile's features stay cache-resident while every query
/// of a block visits them, large enough to amortise the loop overhead.
const VIEW_TILE: usize = 64;
/// Queries per parallel work item in the classify loops.
const QUERY_BLOCK: usize = 8;

/// Classify every query by the class of its argmin view (the paper's
/// ΘT rule; also how the shape-only and colour-only pipelines decide).
///
/// Legacy wrapper over [`try_classify_per_view`]: panics on an empty
/// reference set and discards diagnostics. New code should call the
/// `try_` variant and choose its own degradation policy.
pub fn classify_per_view(
    queries: &[RefView],
    views: &[RefView],
    scorer: &dyn MatchScorer,
) -> Vec<ObjectClass> {
    let diag = Diagnostics::new();
    match try_classify_per_view(queries, views, scorer, &diag) {
        Ok(preds) => preds,
        Err(e) => panic!("{e}"), // taor-lint: allow(panic::panic) — documented legacy wrapper: panicking on Err is this shim's contract; callers wanting Results use the try_* API
    }
}

/// Fallible [`classify_per_view`]: an empty reference set is an
/// [`Error::EmptyReference`]; NaN match scores are quarantined (they
/// never beat the running argmin) and counted in `diag`; a query for
/// which *no* view produced a finite distance receives the first
/// reference view's class as a deterministic fallback and is counted as
/// degraded.
pub fn try_classify_per_view(
    queries: &[RefView],
    views: &[RefView],
    scorer: &dyn MatchScorer,
    diag: &Diagnostics,
) -> Result<Vec<ObjectClass>> {
    if views.is_empty() {
        return Err(Error::EmptyReference("reference set is empty"));
    }
    // Tiled scan: a block of queries walks one tile of reference views at
    // a time, so tile features are reused across the block instead of
    // streaming the whole reference set per query. Each (query, view)
    // pair passes the query's running best as the abandon bound.
    Ok(queries
        .par_chunks(QUERY_BLOCK)
        .flat_map(|block| {
            let mut best = vec![f64::INFINITY; block.len()];
            let mut best_class = vec![views[0].class; block.len()];
            let mut nan_seen = 0u64;
            for tile in views.chunks(VIEW_TILE) {
                for (qi, q) in block.iter().enumerate() {
                    for v in tile {
                        let s = scorer.score_bounded(&q.feat, &v.feat, best[qi]);
                        if s.is_nan() {
                            nan_seen += 1;
                        } else if s < best[qi] {
                            best[qi] = s;
                            best_class[qi] = v.class;
                        }
                    }
                }
            }
            diag.record_nan_scores(nan_seen);
            diag.record_degraded(best.iter().filter(|b| b.is_infinite()).count() as u64);
            best_class
        })
        .collect())
}

/// Ground-truth classes of a prepared query set.
pub fn truth_of(queries: &[RefView]) -> Vec<ObjectClass> {
    queries.iter().map(|q| q.class).collect()
}

/// Classify every query, returning the *full class ranking* (best class
/// first, by each class's minimum view distance) — feeds
/// [`crate::eval::top_k_accuracy`], a robot-relevant measure: a planner
/// can often act on a small hypothesis set rather than a single label.
pub fn classify_per_view_ranked(
    queries: &[RefView],
    views: &[RefView],
    scorer: &dyn MatchScorer,
) -> Vec<Vec<ObjectClass>> {
    let diag = Diagnostics::new();
    match try_classify_per_view_ranked(queries, views, scorer, &diag) {
        Ok(ranked) => ranked,
        Err(e) => panic!("{e}"), // taor-lint: allow(panic::panic) — documented legacy wrapper: panicking on Err is this shim's contract; callers wanting Results use the try_* API
    }
}

/// Fallible [`classify_per_view_ranked`] with the same NaN-quarantine
/// and degradation accounting as [`try_classify_per_view`]. A query
/// whose every class distance stayed infinite still yields a full,
/// deterministic class permutation (index order) and counts as
/// degraded.
pub fn try_classify_per_view_ranked(
    queries: &[RefView],
    views: &[RefView],
    scorer: &dyn MatchScorer,
    diag: &Diagnostics,
) -> Result<Vec<Vec<ObjectClass>>> {
    if views.is_empty() {
        return Err(Error::EmptyReference("reference set is empty"));
    }
    Ok(queries
        .par_chunks(QUERY_BLOCK)
        .flat_map(|block| {
            let mut best = vec![[f64::INFINITY; ObjectClass::COUNT]; block.len()];
            let mut nan_seen = 0u64;
            for tile in views.chunks(VIEW_TILE) {
                for (qi, q) in block.iter().enumerate() {
                    for v in tile {
                        let i = v.class.index();
                        // A view only matters if it improves its own
                        // class's best, so that is the abandon bound.
                        let s = scorer.score_bounded(&q.feat, &v.feat, best[qi][i]);
                        if s.is_nan() {
                            nan_seen += 1;
                        } else if s < best[qi][i] {
                            best[qi][i] = s;
                        }
                    }
                }
            }
            diag.record_nan_scores(nan_seen);
            diag.record_degraded(
                best.iter().filter(|pc| pc.iter().all(|d| d.is_infinite())).count() as u64,
            );
            best.into_iter()
                .map(|per_class| {
                    let mut order: Vec<usize> = (0..ObjectClass::COUNT).collect();
                    order.sort_by(|&a, &b| nan_last_f64(per_class[a], per_class[b]));
                    order.into_iter().filter_map(ObjectClass::from_index).collect::<Vec<_>>()
                })
                .collect::<Vec<_>>()
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use taor_data::{shapenet_set1, shapenet_set2};

    struct ClassOracle;
    impl MatchScorer for ClassOracle {
        fn score(&self, q: &Preprocessed, v: &Preprocessed) -> f64 {
            // A scorer that can only see histograms; identical crops give 0.
            let mut acc = 0.0;
            for (a, b) in q.hist.as_slice().iter().zip(v.hist.as_slice()) {
                acc += (a - b).abs();
            }
            acc
        }
        fn name(&self) -> String {
            "L1-histogram".into()
        }
    }

    #[test]
    fn prepare_views_preserves_labels_and_order() {
        let ds = shapenet_set1(1);
        let views = prepare_views(&ds, Background::White);
        assert_eq!(views.len(), 82);
        for (v, img) in views.iter().zip(&ds.images) {
            assert_eq!(v.class, img.class);
            assert_eq!(v.model_id, img.model_id);
        }
    }

    #[test]
    fn self_matching_is_perfect() {
        // Classifying SNS1 against itself with any sane scorer must score
        // 100%: the argmin view is the query itself at distance 0.
        let ds = shapenet_set1(2);
        let views = prepare_views(&ds, Background::White);
        let preds = classify_per_view(&views, &views, &ClassOracle);
        let truth = truth_of(&views);
        assert_eq!(preds, truth);
    }

    #[test]
    fn cross_set_matching_runs() {
        let q = prepare_views(&shapenet_set1(3), Background::White);
        let r = prepare_views(&shapenet_set2(3), Background::White);
        let preds = classify_per_view(&q, &r, &ClassOracle);
        assert_eq!(preds.len(), q.len());
    }

    #[test]
    #[should_panic(expected = "reference set is empty")]
    fn empty_reference_panics() {
        let q = prepare_views(&shapenet_set1(4), Background::White);
        classify_per_view(&q, &[], &ClassOracle);
    }

    #[test]
    fn ranked_classification_is_consistent_with_top1() {
        let q = prepare_views(&shapenet_set2(5), Background::White);
        let r = prepare_views(&shapenet_set1(5), Background::White);
        let top1 = classify_per_view(&q, &r, &ClassOracle);
        let ranked = classify_per_view_ranked(&q, &r, &ClassOracle);
        for (p, rank) in top1.iter().zip(&ranked) {
            assert_eq!(rank.len(), 10);
            assert_eq!(rank[0], *p, "rank-1 must equal the argmin prediction");
            // Ranking is a permutation of all classes.
            let mut sorted: Vec<usize> = rank.iter().map(|c| c.index()).collect();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..10).collect::<Vec<_>>());
        }
    }

    #[test]
    fn top_k_grows_with_k() {
        use crate::eval::top_k_accuracy;
        let q = prepare_views(&shapenet_set2(6), Background::White);
        let r = prepare_views(&shapenet_set1(6), Background::White);
        let truth = truth_of(&q);
        let ranked = classify_per_view_ranked(&q, &r, &ClassOracle);
        let t1 = top_k_accuracy(&truth, &ranked, 1);
        let t3 = top_k_accuracy(&truth, &ranked, 3);
        assert!(t3 >= t1);
        assert!(t3 > 0.2, "top-3 should be meaningfully above chance: {t3}");
    }
}
