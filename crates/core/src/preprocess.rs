//! The paper's four-step preprocessing pipeline (§3.2):
//!
//! "we (i) first converted to grayscale, (ii) applied global binary
//! thresholding (or its inverse, depending on whether the input background
//! was black or white respectively), (iii) contour detection on cascade,
//! and (iv) cropped the original RGB image to the contour of largest
//! area."
//!
//! The output bundles everything the matching pipelines consume: the RGB
//! crop, the binary mask crop, the largest contour's Hu invariants, and
//! the RGB histogram of the crop.

use taor_imgproc::prelude::*;

/// Background convention of the source corpus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Background {
    /// ShapeNet 2-D views: white background → inverse thresholding.
    White,
    /// NYU segmented crops: black mask → direct thresholding.
    Black,
}

/// Default histogram bins per channel used throughout the reproduction.
pub const HIST_BINS: usize = 32;

/// Features extracted from one image by the preprocessing pipeline.
#[derive(Debug, Clone)]
pub struct Preprocessed {
    /// RGB image cropped to the largest contour's bounding box.
    pub crop: RgbImage,
    /// Binary mask over the same bounding box (255 = object).
    pub mask: GrayImage,
    /// Hu invariants of the largest contour.
    pub hu: HuMoments,
    /// Per-channel RGB histogram of the crop.
    pub hist: RgbHistogram,
    /// Whether the contour stage succeeded (false = whole-image fallback,
    /// which happens when thresholding erases the object — e.g. white
    /// paper on the white catalog background, the very failure mode behind
    /// the Paper class's zero rows in the paper's appendix).
    pub contour_ok: bool,
}

/// Binarise according to the background convention.
pub fn binarise(img: &RgbImage, bg: Background) -> GrayImage {
    let gray = rgb_to_gray(img);
    match bg {
        // White background: object pixels are the *darker* ones.
        Background::White => threshold_binary_inv(&gray, 245),
        // Black mask: object pixels are the brighter ones.
        Background::Black => threshold_binary(&gray, 10),
    }
}

/// Run the full preprocessing pipeline on one image.
///
/// Never fails: when no usable contour is found the whole image is used
/// as the crop (flagged via [`Preprocessed::contour_ok`]), mirroring how a
/// brittle thresholding stage degrades rather than aborts a robot's
/// recognition loop.
pub fn preprocess(img: &RgbImage, bg: Background, bins: usize) -> Preprocessed {
    let bin = binarise(img, bg);
    let contours = find_contours(&bin);
    let largest = largest_contour(&contours).filter(|c| c.area() >= 4.0);

    let (crop, mask, hu, contour_ok) = match largest {
        Some(contour) => {
            let rect = contour.bounding_rect();
            let crop = img.crop(rect).expect("bounding rect lies inside the image"); // taor-lint: allow(panic::expect) — invariant expect: the message states why this cannot fail on valid state
            let mask = bin.crop(rect).expect("same rect, same image size"); // taor-lint: allow(panic::expect) — invariant expect: the message states why this cannot fail on valid state
            let hu = hu_moments(&moments_of_contour(contour));
            (crop, mask, hu, true)
        }
        None => {
            let hu = hu_moments(&moments(&bin, true));
            (img.clone(), bin, hu, false)
        }
    };
    let hist = rgb_histogram(&crop, bins).expect("bins validated by caller contract"); // taor-lint: allow(panic::expect) — invariant expect: the message states why this cannot fail on valid state
    Preprocessed { crop, mask, hu, hist, contour_ok }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taor_imgproc::draw::Canvas;

    fn object_on(bg: [u8; 3], color: [u8; 3]) -> RgbImage {
        let mut c = Canvas::new(64, 64, bg);
        c.fill_rect(20.0, 14.0, 24.0, 36.0, color);
        c.into_image()
    }

    #[test]
    fn white_background_crop() {
        let img = object_on([255, 255, 255], [120, 60, 40]);
        let p = preprocess(&img, Background::White, HIST_BINS);
        assert!(p.contour_ok);
        assert_eq!(p.crop.dimensions(), (24, 36));
        assert_eq!(p.crop.pixel(0, 0), [120, 60, 40]);
    }

    #[test]
    fn black_background_crop() {
        let img = object_on([0, 0, 0], [120, 160, 200]);
        let p = preprocess(&img, Background::Black, HIST_BINS);
        assert!(p.contour_ok);
        assert_eq!(p.crop.dimensions(), (24, 36));
    }

    #[test]
    fn same_object_same_hu_across_backgrounds() {
        let white = object_on([255, 255, 255], [90, 90, 90]);
        let black = object_on([0, 0, 0], [90, 90, 90]);
        let pw = preprocess(&white, Background::White, HIST_BINS);
        let pb = preprocess(&black, Background::Black, HIST_BINS);
        for i in 0..7 {
            assert!(
                (pw.hu[i] - pb.hu[i]).abs() < 1e-9,
                "hu[{i}] differs across background conventions"
            );
        }
    }

    #[test]
    fn white_object_on_white_background_falls_back() {
        // The Paper-class failure mode: thresholding erases the object.
        let img = object_on([255, 255, 255], [252, 252, 250]);
        let p = preprocess(&img, Background::White, HIST_BINS);
        assert!(!p.contour_ok);
        assert_eq!(p.crop.dimensions(), (64, 64));
    }

    #[test]
    fn empty_black_image_falls_back() {
        let img = RgbImage::new(32, 32);
        let p = preprocess(&img, Background::Black, HIST_BINS);
        assert!(!p.contour_ok);
        assert!(p.hu.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn histogram_reflects_crop_not_full_image() {
        let img = object_on([255, 255, 255], [200, 30, 30]);
        let p = preprocess(&img, Background::White, HIST_BINS);
        // The crop is pure object: the red bin dominates channel 0's top.
        let r_hist = &p.hist.as_slice()[..HIST_BINS];
        let red_bin = (200 * HIST_BINS) / 256;
        assert!(r_hist[red_bin] > 0.9, "red bin mass {}", r_hist[red_bin]);
    }

    #[test]
    fn mask_matches_crop_dimensions() {
        let img = object_on([255, 255, 255], [10, 120, 220]);
        let p = preprocess(&img, Background::White, HIST_BINS);
        assert_eq!(p.mask.dimensions(), p.crop.dimensions());
        assert!(p.mask.as_raw().contains(&255));
    }
}
