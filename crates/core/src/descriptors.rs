// taor-lint: allow(panic::index) — dense numeric kernel: indices are derived from dimensions validated at the public boundary and bounded by the enclosing loops.
//! Pipeline (iv): feature-descriptor matching (paper §3.3).
//!
//! SIFT, SURF and ORB descriptors with brute-force matching, trimmed to
//! the second-nearest neighbour, filtered by Lowe's ratio test (thresholds
//! 0.75 and 0.5 in the paper; 0.5 gave the reported tables). SIFT/SURF use
//! L2, ORB uses Hamming. The predicted label is the class of the reference
//! view accumulating the most ratio-test survivors.

use crate::diag::Diagnostics;
use crate::error::{Error, Result};
use rayon::prelude::*;
use taor_data::{Dataset, ObjectClass};
use taor_features::{
    knn_match_binary, knn_match_float, orb_detect_and_compute, ratio_test_matches,
    sift_detect_and_compute, surf_detect_and_compute, verify_matches, BinaryDescriptors,
    FloatDescriptors, HnswIndex, HnswParams, KeyPoint, MihIndex, MihParams, OrbParams,
    RansacParams, RatioMatch, SiftParams, SurfParams,
};
use taor_imgproc::cmp::nan_last_f32;
use taor_imgproc::color::rgb_to_gray;

/// Which descriptor family to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DescriptorKind {
    Sift,
    Surf,
    Orb,
}

impl DescriptorKind {
    /// All three, in paper order.
    pub const ALL: [DescriptorKind; 3] =
        [DescriptorKind::Sift, DescriptorKind::Surf, DescriptorKind::Orb];

    /// Table 3 row label.
    pub fn label(&self) -> &'static str {
        match self {
            DescriptorKind::Sift => "SIFT",
            DescriptorKind::Surf => "SURF",
            DescriptorKind::Orb => "ORB",
        }
    }
}

/// How the pooled reference gallery is searched during classification.
///
/// `Flat` is the paper's brute-force matcher; the other two are the
/// sub-linear indexes of `taor-features`. Each index only applies to the
/// metric it serves — HNSW to float (SIFT/SURF) pools, MIH to binary
/// (ORB) pools — and the other metric transparently stays brute-force,
/// so any mode is safe with any descriptor kind. MIH is exact
/// (bit-identical predictions to `Flat`); HNSW is approximate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AnnIndexMode {
    #[default]
    Flat,
    Hnsw,
    Mih,
}

impl AnnIndexMode {
    /// All modes, flat first.
    pub const ALL: [AnnIndexMode; 3] = [AnnIndexMode::Flat, AnnIndexMode::Hnsw, AnnIndexMode::Mih];

    /// CLI / report label.
    pub fn label(&self) -> &'static str {
        match self {
            AnnIndexMode::Flat => "flat",
            AnnIndexMode::Hnsw => "hnsw",
            AnnIndexMode::Mih => "mih",
        }
    }
}

impl std::str::FromStr for AnnIndexMode {
    type Err = String;

    fn from_str(s: &str) -> std::result::Result<Self, String> {
        match s {
            "flat" => Ok(AnnIndexMode::Flat),
            "hnsw" => Ok(AnnIndexMode::Hnsw),
            "mih" => Ok(AnnIndexMode::Mih),
            other => Err(format!("unknown index mode {other:?} (flat | hnsw | mih)")),
        }
    }
}

/// Descriptors of one image.
#[derive(Debug, Clone)]
enum Descs {
    Float(FloatDescriptors),
    Binary(BinaryDescriptors),
}

/// The pooled reference gallery under one of the [`AnnIndexMode`]s.
enum PoolIndex {
    FloatFlat(FloatDescriptors),
    FloatHnsw(Box<HnswIndex>),
    BinaryFlat(BinaryDescriptors),
    BinaryMih(Box<MihIndex>),
}

impl PoolIndex {
    fn build(pool: Descs, mode: AnnIndexMode) -> Result<PoolIndex> {
        Ok(match (pool, mode) {
            (Descs::Float(p), AnnIndexMode::Hnsw) => PoolIndex::FloatHnsw(Box::new(
                HnswIndex::build(p, HnswParams::default()).map_err(Error::from)?,
            )),
            (Descs::Binary(p), AnnIndexMode::Mih) => PoolIndex::BinaryMih(Box::new(
                MihIndex::build(p, MihParams::default()).map_err(Error::from)?,
            )),
            // The other metric stays brute-force under either ANN mode.
            (Descs::Float(p), _) => PoolIndex::FloatFlat(p),
            (Descs::Binary(p), _) => PoolIndex::BinaryFlat(p),
        })
    }

    /// 2-NN match a query image's descriptors against the pool; a matcher
    /// error degrades to "no matches" exactly like the flat path.
    fn knn(&self, q: &Descs) -> Vec<RatioMatch> {
        match (q, self) {
            (Descs::Float(q), PoolIndex::FloatFlat(p)) => knn_match_float(q, p).unwrap_or_default(),
            (Descs::Float(q), PoolIndex::FloatHnsw(ix)) => ix.knn_match(q).unwrap_or_default(),
            (Descs::Binary(q), PoolIndex::BinaryFlat(p)) => {
                knn_match_binary(q, p).unwrap_or_default()
            }
            (Descs::Binary(q), PoolIndex::BinaryMih(ix)) => ix.knn_match(q).unwrap_or_default(),
            _ => unreachable!("index holds a single descriptor kind"),
        }
    }
}

/// Extracted descriptors for a whole dataset.
#[derive(Debug, Clone)]
pub struct DescriptorIndex {
    kind: DescriptorKind,
    classes: Vec<ObjectClass>,
    descs: Vec<Descs>,
    keypoints: Vec<Vec<KeyPoint>>,
}

impl DescriptorIndex {
    /// Number of images indexed.
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// Total descriptor count across all images (diagnostics).
    pub fn total_descriptors(&self) -> usize {
        self.descs
            .iter()
            .map(|d| match d {
                Descs::Float(f) => f.len(),
                Descs::Binary(b) => b.len(),
            })
            .sum()
    }
}

/// Extract descriptors for every image of a dataset (parallel). Images
/// where the detector finds nothing contribute empty descriptor sets.
pub fn extract_index(dataset: &Dataset, kind: DescriptorKind) -> DescriptorIndex {
    // Unzip straight into the two column vectors (sized up front from the
    // exact iterator length) instead of materialising an intermediate
    // `Vec<(Descs, Vec<KeyPoint>)>` and splitting it in a second pass.
    let (descs, keypoints): (Vec<Descs>, Vec<Vec<KeyPoint>>) = dataset
        .images
        .par_iter()
        .map(|img| {
            let gray = rgb_to_gray(&img.image);
            match kind {
                DescriptorKind::Sift => {
                    let (k, d) = sift_detect_and_compute(&gray, &SiftParams::default())
                        .unwrap_or_else(|_| (Vec::new(), FloatDescriptors::new(128)));
                    (Descs::Float(d), k)
                }
                DescriptorKind::Surf => {
                    let (k, d) = surf_detect_and_compute(&gray, &SurfParams::default())
                        .unwrap_or_else(|_| (Vec::new(), FloatDescriptors::new(64)));
                    (Descs::Float(d), k)
                }
                DescriptorKind::Orb => {
                    let (k, d) = orb_detect_and_compute(&gray, &OrbParams::default())
                        .unwrap_or_else(|_| (Vec::new(), BinaryDescriptors::new(32)));
                    (Descs::Binary(d), k)
                }
            }
        })
        .collect();
    let mut classes = Vec::with_capacity(dataset.images.len());
    classes.extend(dataset.images.iter().map(|i| i.class));
    DescriptorIndex { kind, classes, descs, keypoints }
}

/// Classify with per-view matching plus RANSAC geometric verification:
/// the predicted class is the reference view with the most geometrically
/// consistent inliers (Lowe's full pipeline; ablation for Table 3).
pub fn classify_descriptors_verified(
    queries: &DescriptorIndex,
    reference: &DescriptorIndex,
    ratio: f32,
    ransac: &RansacParams,
) -> Vec<ObjectClass> {
    let diag = Diagnostics::new();
    match try_classify_descriptors_verified(queries, reference, ratio, ransac, &diag) {
        Ok(preds) => preds,
        Err(e) => panic!("{e}"), // taor-lint: allow(panic::panic) — documented legacy wrapper: panicking on Err is this shim's contract; callers wanting Results use the try_* API
    }
}

/// Fallible [`classify_descriptors_verified`]: kind mismatches and empty
/// reference indices are typed errors; per-query failures (no
/// descriptors, no geometrically consistent view, a matcher error on a
/// single view) degrade to the deterministic fallback label and are
/// counted in `diag` instead of aborting the batch.
pub fn try_classify_descriptors_verified(
    queries: &DescriptorIndex,
    reference: &DescriptorIndex,
    ratio: f32,
    ransac: &RansacParams,
    diag: &Diagnostics,
) -> Result<Vec<ObjectClass>> {
    if queries.kind != reference.kind {
        return Err(Error::KindMismatch {
            query: queries.kind.label(),
            reference: reference.kind.label(),
        });
    }
    if reference.is_empty() {
        return Err(Error::EmptyReference("reference index is empty"));
    }
    Ok(queries
        .descs
        .par_iter()
        .enumerate()
        .map(|(qi, q)| {
            let q_kps = &queries.keypoints[qi];
            let mut best_class = reference.classes[0];
            let mut best_inliers = 0usize;
            let mut best_dist = f32::INFINITY;
            for (vi, v) in reference.descs.iter().enumerate() {
                // Widths are uniform per kind by construction; a matcher
                // error on one view degrades that view to "no matches"
                // rather than poisoning the whole batch.
                let matches = match (q, v) {
                    (Descs::Float(q), Descs::Float(v)) => knn_match_float(q, v).unwrap_or_default(),
                    (Descs::Binary(q), Descs::Binary(v)) => {
                        knn_match_binary(q, v).unwrap_or_default()
                    }
                    _ => unreachable!("index holds a single descriptor kind"),
                };
                if matches.is_empty() {
                    continue;
                }
                let survivors = ratio_test_matches(&matches, ratio);
                // A RANSAC failure on one view means that view offers no
                // verified inliers.
                let inliers = verify_matches(q_kps, &reference.keypoints[vi], &survivors, ransac)
                    .map(|v| v.inliers.len())
                    .unwrap_or(0);
                let mean_dist = if survivors.is_empty() {
                    f32::INFINITY
                } else {
                    survivors.iter().map(|m| m.distance).sum::<f32>() / survivors.len() as f32
                };
                if mean_dist.is_nan() {
                    diag.record_nan_scores(1);
                }
                if inliers > best_inliers
                    || (inliers == best_inliers
                        && nan_last_f32(mean_dist, best_dist) == std::cmp::Ordering::Less)
                {
                    best_inliers = inliers;
                    best_dist = mean_dist;
                    best_class = reference.classes[vi];
                }
            }
            if best_inliers == 0 {
                // Nothing geometrically consistent anywhere: deterministic
                // pseudo-random fallback (as in `classify_descriptors`).
                diag.record_degraded(1);
                ObjectClass::from_index((qi * 7 + 3) % ObjectClass::COUNT)
                    .unwrap_or(reference.classes[0])
            } else {
                best_class
            }
        })
        .collect())
}

/// Classify every query of `queries` against the `reference` index.
///
/// Decision rule (the paper's "ratio test … to select the best match
/// among all reference 2D views at each iteration"): every reference
/// descriptor is pooled with its owning class; each query keypoint finds
/// its two nearest pooled neighbours, survives Lowe's ratio test or is
/// dropped, and votes for the class owning its best match. The predicted
/// label is the majority vote, ties broken by summed match distance. A
/// query whose keypoints all fail the ratio test falls back to its single
/// best unfiltered match; a query with no descriptors at all gets a
/// deterministic pseudo-random label (the paper's effective behaviour on
/// textureless crops).
pub fn classify_descriptors(
    queries: &DescriptorIndex,
    reference: &DescriptorIndex,
    ratio: f32,
) -> Vec<ObjectClass> {
    let diag = Diagnostics::new();
    match try_classify_descriptors(queries, reference, ratio, &diag) {
        Ok(preds) => preds,
        Err(e) => panic!("{e}"), // taor-lint: allow(panic::panic) — documented legacy wrapper: panicking on Err is this shim's contract; callers wanting Results use the try_* API
    }
}

/// Fallible [`classify_descriptors`]: kind mismatches and empty
/// reference indices are typed errors; featureless queries and queries
/// whose keypoints all fail the ratio test degrade per-item (counted in
/// `diag`) instead of aborting the batch.
pub fn try_classify_descriptors(
    queries: &DescriptorIndex,
    reference: &DescriptorIndex,
    ratio: f32,
    diag: &Diagnostics,
) -> Result<Vec<ObjectClass>> {
    try_classify_descriptors_with(queries, reference, ratio, diag, AnnIndexMode::Flat)
}

/// [`try_classify_descriptors`] with an explicit gallery index mode: the
/// pooled reference descriptors are searched brute-force (`Flat`),
/// through an HNSW graph (`Hnsw`, float kinds) or through multi-index
/// hashing (`Mih`, binary kinds — exact, so predictions are bit-identical
/// to `Flat`). The index is built once per call and amortised over every
/// query image.
pub fn try_classify_descriptors_with(
    queries: &DescriptorIndex,
    reference: &DescriptorIndex,
    ratio: f32,
    diag: &Diagnostics,
    mode: AnnIndexMode,
) -> Result<Vec<ObjectClass>> {
    if queries.kind != reference.kind {
        return Err(Error::KindMismatch {
            query: queries.kind.label(),
            reference: reference.kind.label(),
        });
    }
    if reference.is_empty() {
        return Err(Error::EmptyReference("reference index is empty"));
    }

    // Pool all reference descriptors, remembering each one's class.
    let (pool, owners): (Descs, Vec<ObjectClass>) = match &reference.descs[0] {
        Descs::Float(first) => {
            let mut pool = FloatDescriptors::new(first.width());
            let mut owners = Vec::new();
            for (d, &class) in reference.descs.iter().zip(&reference.classes) {
                let Descs::Float(d) = d else { unreachable!("single kind per index") };
                for i in 0..d.len() {
                    pool.push(d.row(i));
                    owners.push(class);
                }
            }
            (Descs::Float(pool), owners)
        }
        Descs::Binary(first) => {
            let mut pool = BinaryDescriptors::new(first.width_bytes());
            let mut owners = Vec::new();
            for (d, &class) in reference.descs.iter().zip(&reference.classes) {
                let Descs::Binary(d) = d else { unreachable!("single kind per index") };
                for i in 0..d.len() {
                    pool.push(d.row(i));
                    owners.push(class);
                }
            }
            (Descs::Binary(pool), owners)
        }
    };
    if owners.is_empty() {
        return Err(Error::EmptyReference("reference index has no descriptors"));
    }
    let pool = PoolIndex::build(pool, mode)?;

    Ok(queries
        .descs
        .par_iter()
        .enumerate()
        .map(|(qi, q)| {
            // Widths are uniform per kind by construction; a matcher error
            // degrades this query to "featureless" rather than poisoning
            // the whole batch.
            let matches = pool.knn(q);
            let fallback = ObjectClass::from_index((qi * 7 + 3) % ObjectClass::COUNT)
                .unwrap_or(reference.classes[0]);
            if matches.is_empty() {
                // Deterministic fallback for featureless queries.
                diag.record_degraded(1);
                return fallback;
            }
            diag.record_nan_scores(
                matches.iter().filter(|m| m.best.distance.is_nan()).count() as u64
            );
            let mut votes = [0usize; ObjectClass::COUNT];
            let mut dist_sum = [0.0f32; ObjectClass::COUNT];
            for m in ratio_test_matches(&matches, ratio) {
                let class = owners[m.train_idx];
                votes[class.index()] += 1;
                dist_sum[class.index()] += m.distance;
            }
            if votes.iter().all(|&v| v == 0) {
                // No survivor: fall back to the best unfiltered match
                // (a NaN distance never wins the argmin).
                return matches
                    .iter()
                    .min_by(|a, b| nan_last_f32(a.best.distance, b.best.distance))
                    .map(|best| owners[best.best.train_idx])
                    .unwrap_or(fallback);
            }
            // Majority vote; ties broken by smaller mean distance.
            let mut best_class = 0usize;
            for c in 1..ObjectClass::COUNT {
                let better = votes[c] > votes[best_class]
                    || (votes[c] == votes[best_class]
                        && votes[c] > 0
                        && dist_sum[c] / (votes[c] as f32)
                            < dist_sum[best_class] / (votes[best_class].max(1) as f32));
                if better {
                    best_class = c;
                }
            }
            ObjectClass::from_index(best_class).unwrap_or(fallback)
        })
        .collect())
}

/// Ground-truth classes of an index, in image order.
pub fn index_truth(index: &DescriptorIndex) -> Vec<ObjectClass> {
    index.classes.clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use taor_data::{shapenet_set1, shapenet_set2};

    #[test]
    fn extraction_produces_descriptors_for_most_views() {
        let sns1 = shapenet_set1(1);
        for kind in DescriptorKind::ALL {
            let idx = extract_index(&sns1, kind);
            assert_eq!(idx.len(), 82);
            assert!(
                idx.total_descriptors() > 82,
                "{}: only {} descriptors",
                kind.label(),
                idx.total_descriptors()
            );
        }
    }

    #[test]
    fn self_matching_is_strong() {
        // A view matched against an index containing itself scores its own
        // class (all descriptor distances are 0).
        let sns1 = shapenet_set1(2);
        let idx = extract_index(&sns1, DescriptorKind::Orb);
        let preds = classify_descriptors(&idx, &idx, 0.75);
        let truth = index_truth(&idx);
        let correct = preds.iter().zip(&truth).filter(|(p, t)| p == t).count();
        assert!(correct as f64 / truth.len() as f64 > 0.8, "{correct}/82");
    }

    #[test]
    fn cross_set_classification_runs() {
        let q = extract_index(&shapenet_set1(3), DescriptorKind::Sift);
        let r = extract_index(&shapenet_set2(3), DescriptorKind::Sift);
        let preds = classify_descriptors(&q, &r, 0.5);
        assert_eq!(preds.len(), 82);
    }

    #[test]
    #[should_panic(expected = "descriptor kinds must match")]
    fn kind_mismatch_panics() {
        let q = extract_index(&shapenet_set1(4), DescriptorKind::Sift);
        let r = extract_index(&shapenet_set2(4), DescriptorKind::Orb);
        classify_descriptors(&q, &r, 0.5);
    }

    #[test]
    fn labels_match_table3() {
        let labels: Vec<_> = DescriptorKind::ALL.iter().map(|k| k.label()).collect();
        assert_eq!(labels, ["SIFT", "SURF", "ORB"]);
    }

    #[test]
    fn mih_mode_is_bit_identical_to_flat() {
        let q = extract_index(&shapenet_set1(6), DescriptorKind::Orb);
        let r = extract_index(&shapenet_set2(6), DescriptorKind::Orb);
        let diag = Diagnostics::new();
        let flat = try_classify_descriptors_with(&q, &r, 0.5, &diag, AnnIndexMode::Flat).unwrap();
        let mih = try_classify_descriptors_with(&q, &r, 0.5, &diag, AnnIndexMode::Mih).unwrap();
        assert_eq!(flat, mih, "MIH is exact: predictions must match flat exactly");
    }

    #[test]
    fn hnsw_mode_agrees_with_flat() {
        let sns1 = shapenet_set1(7);
        let idx = extract_index(&sns1, DescriptorKind::Surf);
        let diag = Diagnostics::new();
        let flat =
            try_classify_descriptors_with(&idx, &idx, 0.75, &diag, AnnIndexMode::Flat).unwrap();
        let hnsw =
            try_classify_descriptors_with(&idx, &idx, 0.75, &diag, AnnIndexMode::Hnsw).unwrap();
        // HNSW is approximate: allow a small prediction drift vs. the
        // brute-force pool, but at self-matching recall it should agree on
        // nearly every view.
        let agree = flat.iter().zip(&hnsw).filter(|(a, b)| a == b).count();
        assert!(agree as f64 / flat.len() as f64 >= 0.9, "{agree}/{}", flat.len());
    }

    #[test]
    fn index_mode_labels_and_parsing() {
        for mode in AnnIndexMode::ALL {
            assert_eq!(mode.label().parse::<AnnIndexMode>().unwrap(), mode);
        }
        assert!("faiss".parse::<AnnIndexMode>().is_err());
        assert_eq!(AnnIndexMode::default(), AnnIndexMode::Flat);
    }

    #[test]
    fn verified_classification_runs_and_is_plausible() {
        let sns1 = shapenet_set1(5);
        let idx = extract_index(&sns1, DescriptorKind::Orb);
        let preds = classify_descriptors_verified(&idx, &idx, 0.75, &RansacParams::default());
        assert_eq!(preds.len(), 82);
        // Self-matching with geometric verification should be strong: the
        // identical view is a perfect inlier set.
        let truth = index_truth(&idx);
        let correct = preds.iter().zip(&truth).filter(|(p, t)| p == t).count();
        assert!(correct as f64 / 82.0 > 0.7, "{correct}/82");
    }
}
