//! The TAOR crop wire format — the byte boundary of the recognition
//! service.
//!
//! A robot client ships a segmented crop to the server as one small
//! binary message; everything a hostile or broken client can put on the
//! wire must decode into either a valid [`RgbImage`] or a typed
//! [`WireError`] — never a panic, never an unbounded allocation. The
//! format is deliberately trivial:
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"TAOR"
//! 4       1     version (currently 1)
//! 5       1     pixel format: 0 = RGB8, 1 = RGBF32 (f32 LE in [0, 1])
//! 6       4     width  (u32 LE, 1..=MAX_WIRE_DIM)
//! 10      4     height (u32 LE, 1..=MAX_WIRE_DIM)
//! 14      …     payload: exactly width*height*3 samples
//! ```
//!
//! The `RGBF32` variant exists because upstream vision stacks hand
//! around float buffers, and float buffers carry NaNs. The decoder
//! quarantines them — a non-finite sample decodes as 0 and is counted
//! in [`DecodeStats::nan_pixels`] — so one poisoned pixel degrades one
//! channel of one pixel, not the whole request.

use crate::error::{Error, Result};
use std::fmt;
use taor_imgproc::image::RgbImage;

/// Magic prefix of every wire crop.
pub const WIRE_MAGIC: [u8; 4] = *b"TAOR";
/// Current (and only) wire format version.
pub const WIRE_VERSION: u8 = 1;
/// Header length in bytes.
pub const WIRE_HEADER_LEN: usize = 14;
/// Maximum accepted crop side. Far above anything a segmenter emits,
/// far below anything that could make `w*h*3*4` allocations hurt.
pub const MAX_WIRE_DIM: u32 = 4096;

/// Pixel encodings a wire crop may use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PixelFormat {
    /// One byte per sample, interleaved RGB.
    Rgb8,
    /// One little-endian `f32` per sample in `[0, 1]`, interleaved RGB.
    RgbF32,
}

impl PixelFormat {
    /// Wire tag byte.
    pub fn tag(self) -> u8 {
        match self {
            PixelFormat::Rgb8 => 0,
            PixelFormat::RgbF32 => 1,
        }
    }

    /// Bytes per sample (one channel of one pixel).
    pub fn sample_bytes(self) -> usize {
        match self {
            PixelFormat::Rgb8 => 1,
            PixelFormat::RgbF32 => 4,
        }
    }
}

/// Typed decode failures: everything a malformed, truncated or hostile
/// buffer can be, distinguished so the service can map each to the
/// right HTTP status and the fault harness can assert exact outcomes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer is shorter than the fixed header.
    TruncatedHeader { got: usize },
    /// The first four bytes are not `b"TAOR"`.
    BadMagic([u8; 4]),
    /// Unknown version byte.
    BadVersion(u8),
    /// Unknown pixel-format tag.
    BadFormat(u8),
    /// Width or height is zero.
    ZeroDimension { width: u32, height: u32 },
    /// Width or height exceeds [`MAX_WIRE_DIM`].
    Oversized { width: u32, height: u32, max: u32 },
    /// Payload is shorter than the header promises.
    TruncatedPayload { expected: usize, got: usize },
    /// Payload is longer than the header promises.
    TrailingBytes { expected: usize, got: usize },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::TruncatedHeader { got } => {
                write!(f, "wire crop truncated: {got} bytes, header needs {WIRE_HEADER_LEN}")
            }
            WireError::BadMagic(m) => write!(f, "wire crop has bad magic {m:?}"),
            WireError::BadVersion(v) => write!(f, "unsupported wire version {v}"),
            WireError::BadFormat(t) => write!(f, "unknown pixel-format tag {t}"),
            WireError::ZeroDimension { width, height } => {
                write!(f, "wire crop has zero dimension: {width}x{height}")
            }
            WireError::Oversized { width, height, max } => {
                write!(f, "wire crop {width}x{height} exceeds the {max}x{max} limit")
            }
            WireError::TruncatedPayload { expected, got } => {
                write!(f, "wire payload truncated: expected {expected} bytes, got {got}")
            }
            WireError::TrailingBytes { expected, got } => {
                write!(f, "wire payload has trailing bytes: expected {expected}, got {got}")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// What the decoder had to quarantine while accepting a crop.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize)]
pub struct DecodeStats {
    /// Non-finite `f32` samples replaced by 0.
    pub nan_pixels: u64,
}

/// Encode an [`RgbImage`] as an RGB8 wire crop.
pub fn encode_rgb8(img: &RgbImage) -> Vec<u8> {
    let (w, h) = img.dimensions();
    let mut out = Vec::with_capacity(WIRE_HEADER_LEN + img.as_raw().len());
    out.extend_from_slice(&WIRE_MAGIC);
    out.push(WIRE_VERSION);
    out.push(PixelFormat::Rgb8.tag());
    out.extend_from_slice(&w.to_le_bytes());
    out.extend_from_slice(&h.to_le_bytes());
    out.extend_from_slice(img.as_raw());
    out
}

/// Encode raw `f32` samples (interleaved RGB, `[0, 1]`, length
/// `width*height*3`) as an RGBF32 wire crop. The samples are written
/// verbatim — including NaNs — which is exactly what the fault corpus
/// needs.
pub fn encode_f32(width: u32, height: u32, samples: &[f32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(WIRE_HEADER_LEN + samples.len() * 4);
    out.extend_from_slice(&WIRE_MAGIC);
    out.push(WIRE_VERSION);
    out.push(PixelFormat::RgbF32.tag());
    out.extend_from_slice(&width.to_le_bytes());
    out.extend_from_slice(&height.to_le_bytes());
    for s in samples {
        out.extend_from_slice(&s.to_le_bytes());
    }
    out
}

fn le_u32(bytes: &[u8], at: usize) -> u32 {
    let mut b = [0u8; 4];
    b.copy_from_slice(&bytes[at..at + 4]); // taor-lint: allow(panic::index) — caller validated bytes.len() >= WIRE_HEADER_LEN before any le_u32 read
    u32::from_le_bytes(b)
}

/// Decode a wire crop. Every malformed input is a typed
/// [`Error::Wire`]; a well-formed RGBF32 crop with non-finite samples
/// decodes successfully with the poison quarantined and counted.
pub fn decode_crop(bytes: &[u8]) -> Result<(RgbImage, DecodeStats)> {
    if bytes.len() < WIRE_HEADER_LEN {
        return Err(Error::Wire(WireError::TruncatedHeader { got: bytes.len() }));
    }
    let magic: [u8; 4] = [bytes[0], bytes[1], bytes[2], bytes[3]];
    if magic != WIRE_MAGIC {
        return Err(Error::Wire(WireError::BadMagic(magic)));
    }
    if bytes[4] != WIRE_VERSION {
        return Err(Error::Wire(WireError::BadVersion(bytes[4])));
    }
    let format = match bytes[5] {
        0 => PixelFormat::Rgb8,
        1 => PixelFormat::RgbF32,
        t => return Err(Error::Wire(WireError::BadFormat(t))),
    };
    let width = le_u32(bytes, 6);
    let height = le_u32(bytes, 10);
    if width == 0 || height == 0 {
        return Err(Error::Wire(WireError::ZeroDimension { width, height }));
    }
    if width > MAX_WIRE_DIM || height > MAX_WIRE_DIM {
        return Err(Error::Wire(WireError::Oversized { width, height, max: MAX_WIRE_DIM }));
    }
    let samples = width as usize * height as usize * 3;
    let expected = samples * format.sample_bytes();
    let payload = bytes.get(WIRE_HEADER_LEN..).unwrap_or(&[]);
    if payload.len() < expected {
        return Err(Error::Wire(WireError::TruncatedPayload { expected, got: payload.len() }));
    }
    if payload.len() > expected {
        return Err(Error::Wire(WireError::TrailingBytes { expected, got: payload.len() }));
    }

    let mut stats = DecodeStats::default();
    let data: Vec<u8> = match format {
        PixelFormat::Rgb8 => payload.to_vec(),
        PixelFormat::RgbF32 => {
            let mut data = Vec::with_capacity(samples);
            for chunk in payload.chunks_exact(4) {
                let mut b = [0u8; 4];
                b.copy_from_slice(chunk);
                let v = f32::from_le_bytes(b);
                if v.is_finite() {
                    data.push((v.clamp(0.0, 1.0) * 255.0).round() as u8);
                } else {
                    stats.nan_pixels += 1;
                    data.push(0);
                }
            }
            data
        }
    };
    let img = RgbImage::from_vec(width, height, data)?;
    Ok((img, stats))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_image() -> RgbImage {
        let mut img = RgbImage::new(3, 2);
        for (i, (x, y)) in (0..3).flat_map(|x| (0..2).map(move |y| (x, y))).enumerate() {
            img.put_pixel(x, y, [i as u8 * 10, 255 - i as u8, 7]);
        }
        img
    }

    #[test]
    fn rgb8_roundtrip_is_lossless() {
        let img = tiny_image();
        let bytes = encode_rgb8(&img);
        let (back, stats) = decode_crop(&bytes).unwrap();
        assert_eq!(back.as_raw(), img.as_raw());
        assert_eq!(stats.nan_pixels, 0);
    }

    #[test]
    fn f32_decode_quantises_and_quarantines_nan() {
        let samples = vec![0.0, 0.5, 1.0, f32::NAN, f32::INFINITY, -3.0];
        let bytes = encode_f32(1, 2, &samples);
        let (img, stats) = decode_crop(&bytes).unwrap();
        assert_eq!(img.dimensions(), (1, 2));
        assert_eq!(img.as_raw(), &[0, 128, 255, 0, 0, 0]);
        // NaN and +inf are quarantined; -3.0 is finite and clamps to 0.
        assert_eq!(stats.nan_pixels, 2);
    }

    #[test]
    fn typed_errors_for_every_malformation() {
        let valid = encode_rgb8(&tiny_image());
        let wire_err = |bytes: &[u8]| match decode_crop(bytes) {
            Err(crate::error::Error::Wire(e)) => e,
            other => panic!("expected wire error, got {other:?}"),
        };

        assert!(matches!(wire_err(&valid[..5]), WireError::TruncatedHeader { got: 5 }));
        let mut bad = valid.clone();
        bad[0] = b'X';
        assert!(matches!(wire_err(&bad), WireError::BadMagic(_)));
        let mut bad = valid.clone();
        bad[4] = 9;
        assert!(matches!(wire_err(&bad), WireError::BadVersion(9)));
        let mut bad = valid.clone();
        bad[5] = 7;
        assert!(matches!(wire_err(&bad), WireError::BadFormat(7)));
        let mut bad = valid.clone();
        bad[6..10].copy_from_slice(&0u32.to_le_bytes());
        assert!(matches!(wire_err(&bad), WireError::ZeroDimension { .. }));
        let mut bad = valid.clone();
        bad[6..10].copy_from_slice(&(MAX_WIRE_DIM + 1).to_le_bytes());
        assert!(matches!(wire_err(&bad), WireError::Oversized { .. }));
        assert!(matches!(wire_err(&valid[..valid.len() - 1]), WireError::TruncatedPayload { .. }));
        let mut bad = valid.clone();
        bad.push(0);
        assert!(matches!(wire_err(&bad), WireError::TrailingBytes { .. }));
    }

    #[test]
    fn oversized_header_does_not_allocate_payload() {
        // A 14-byte buffer claiming a 4096x4096 crop must be rejected
        // from the header alone (TruncatedPayload), instantly.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&WIRE_MAGIC);
        bytes.push(WIRE_VERSION);
        bytes.push(0);
        bytes.extend_from_slice(&4096u32.to_le_bytes());
        bytes.extend_from_slice(&4096u32.to_le_bytes());
        assert!(matches!(
            decode_crop(&bytes),
            Err(crate::error::Error::Wire(WireError::TruncatedPayload { .. }))
        ));
    }
}
