//! Plain-text table rendering and JSON experiment records.
//!
//! The repro harness prints each paper table in the same row/column
//! layout as the publication and can persist every run as JSON for
//! later diffing.

use crate::eval::{BinaryEvaluation, Evaluation};
use serde::Serialize;
use std::fmt::Write as _;
use taor_data::ObjectClass;

/// A simple aligned text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    pub title: String,
    pub headers: Vec<String>,
    pub rows: Vec<Vec<String>>,
}

impl TextTable {
    /// New table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        TextTable {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row; must match the header count.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "{}", self.title);
            let _ = writeln!(out, "{}", "=".repeat(self.title.len().min(100)));
        }
        let line = |cells: &[String], widths: &[usize]| -> String {
            cells.iter().zip(widths).map(|(c, w)| format!("{c:<w$}")).collect::<Vec<_>>().join("  ")
        };
        let _ = writeln!(out, "{}", line(&self.headers, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }
}

/// Format a float the way the paper's tables do (5 decimals for NYU-scale
/// tables, 2 for the small SNS tables).
pub fn fmt_f(v: f64, decimals: usize) -> String {
    format!("{v:.decimals$}")
}

/// Build the class-wise block for one approach row (Tables 5–9 layout:
/// one row per measure, one column per class).
pub fn classwise_rows(table: &mut TextTable, approach: &str, eval: &Evaluation, decimals: usize) {
    type Measure = (&'static str, fn(&crate::eval::ClassMetrics) -> f64);
    let measures: [Measure; 4] = [
        ("Accuracy", |m| m.accuracy),
        ("Precision", |m| m.precision_paper),
        ("Recall", |m| m.recall),
        ("F1", |m| m.f1),
    ];
    for (i, (name, get)) in measures.iter().enumerate() {
        let mut cells = Vec::with_capacity(2 + ObjectClass::COUNT);
        cells.push(if i == 0 { approach.to_string() } else { String::new() });
        cells.push(name.to_string());
        for m in &eval.per_class {
            cells.push(fmt_f(get(m), decimals));
        }
        table.row(cells);
    }
}

/// A serialisable record of one experiment run.
#[derive(Debug, Clone, Serialize)]
pub struct ExperimentRecord {
    /// Table id (1–9).
    pub table: usize,
    /// Approach label as printed.
    pub approach: String,
    /// Query/reference description ("NYU v. SNS1" etc.).
    pub dataset: String,
    pub cumulative_accuracy: Option<f64>,
    pub evaluation: Option<Evaluation>,
    pub binary: Option<BinaryEvaluation>,
}

/// Standard header row for class-wise tables.
pub fn classwise_headers() -> Vec<&'static str> {
    let mut h = vec!["Approach", "Measure"];
    h.extend(ObjectClass::ALL.iter().map(|c| c.name()));
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::evaluate;

    #[test]
    fn render_aligns_columns() {
        let mut t = TextTable::new("Demo", &["A", "Long header", "B"]);
        t.row(vec!["x".into(), "1".into(), "yy".into()]);
        t.row(vec!["longer".into(), "2".into(), "z".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[0].contains("Demo"));
        assert!(lines[2].starts_with("A"));
        // All data lines have equal leading column width.
        let col = lines[4].find("1").unwrap();
        assert_eq!(lines[5].find("2").unwrap(), col);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn wrong_row_width_panics() {
        let mut t = TextTable::new("T", &["A", "B"]);
        t.row(vec!["only one".into()]);
    }

    #[test]
    fn classwise_rows_have_fixed_layout() {
        let truth: Vec<ObjectClass> =
            (0..100).map(|i| ObjectClass::from_index(i % 10).unwrap()).collect();
        let eval = evaluate(&truth, &truth);
        let mut t = TextTable::new("t", &classwise_headers());
        classwise_rows(&mut t, "Perfect", &eval, 3);
        assert_eq!(t.rows.len(), 4);
        assert_eq!(t.rows[0][0], "Perfect");
        assert_eq!(t.rows[1][0], "");
        assert_eq!(t.rows[0][1], "Accuracy");
        assert_eq!(t.rows[0][2], "1.000");
    }

    #[test]
    fn fmt_f_rounds() {
        assert_eq!(fmt_f(0.123456, 5), "0.12346");
        assert_eq!(fmt_f(0.1, 2), "0.10");
    }

    #[test]
    fn experiment_record_serialises() {
        let rec = ExperimentRecord {
            table: 2,
            approach: "Baseline".into(),
            dataset: "NYU v. SNS1".into(),
            cumulative_accuracy: Some(0.1),
            evaluation: None,
            binary: None,
        };
        let json = serde_json::to_string(&rec).unwrap();
        assert!(json.contains("\"table\":2"));
    }
}
