//! The workspace error taxonomy for the inference core.
//!
//! Every recoverable failure a pipeline can hit on a robot — an empty
//! reference catalog, a degenerate crop, an undersized network input —
//! is a value of [`Error`], not a panic. The legacy `classify_*` entry
//! points keep their historical panic behaviour as thin wrappers over
//! the `try_*` variants, so existing callers and tests are unaffected;
//! new code should prefer the `try_*` functions and decide its own
//! degradation policy.

use std::fmt;

use taor_features::FeatureError;
use taor_imgproc::error::ImgError;
use taor_nn::TensorError;

/// Errors produced by the recognition pipelines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A reference set (views, catalog, or descriptor index) was empty.
    /// The payload names the missing collection, matching the legacy
    /// panic message so callers can pattern-match on it.
    EmptyReference(&'static str),
    /// A required input collection was empty (e.g. a background model
    /// with zero frames).
    EmptyInput(&'static str),
    /// Query and reference descriptor indices were built with different
    /// descriptor kinds.
    KindMismatch { query: &'static str, reference: &'static str },
    /// A numeric parameter was outside its valid range.
    InvalidParameter { name: &'static str, msg: String },
    /// An image-processing operation failed.
    Img(ImgError),
    /// A feature-extraction or matching operation failed.
    Feature(FeatureError),
    /// A neural-network operation failed.
    Nn(TensorError),
    /// A wire-format crop buffer was malformed (service boundary).
    Wire(crate::wire::WireError),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            // The payload is the legacy panic message ("reference set is
            // empty", "reference catalog is empty", ...) verbatim.
            Error::EmptyReference(what) => write!(f, "{what}"),
            Error::EmptyInput(what) => write!(f, "empty input: {what}"),
            Error::KindMismatch { query, reference } => {
                write!(f, "descriptor kinds must match: query {query} vs reference {reference}")
            }
            Error::InvalidParameter { name, msg } => {
                write!(f, "invalid parameter `{name}`: {msg}")
            }
            Error::Img(e) => write!(f, "image processing: {e}"),
            Error::Feature(e) => write!(f, "feature extraction: {e}"),
            Error::Nn(e) => write!(f, "network: {e}"),
            Error::Wire(e) => write!(f, "wire: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Img(e) => Some(e),
            Error::Feature(e) => Some(e),
            Error::Nn(e) => Some(e),
            Error::Wire(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ImgError> for Error {
    fn from(e: ImgError) -> Self {
        Error::Img(e)
    }
}

impl From<FeatureError> for Error {
    fn from(e: FeatureError) -> Self {
        Error::Feature(e)
    }
}

impl From<TensorError> for Error {
    fn from(e: TensorError) -> Self {
        Error::Nn(e)
    }
}

impl From<crate::wire::WireError> for Error {
    fn from(e: crate::wire::WireError) -> Self {
        Error::Wire(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_preserves_legacy_panic_messages() {
        // The legacy `classify_*` wrappers panic with `Error`'s Display
        // output, so these strings are load-bearing for `should_panic`
        // tests downstream.
        assert_eq!(
            Error::EmptyReference("reference set is empty").to_string(),
            "reference set is empty"
        );
        assert_eq!(
            Error::EmptyReference("reference catalog is empty").to_string(),
            "reference catalog is empty"
        );
        assert!(Error::KindMismatch { query: "Sift", reference: "Orb" }
            .to_string()
            .contains("descriptor kinds must match"));
    }

    #[test]
    fn wrapped_errors_expose_source() {
        use std::error::Error as _;
        let e = Error::from(TensorError::InputTooSmall { width: 1, height: 1 });
        assert!(e.source().is_some());
        assert!(e.to_string().contains("too small"));
        let e = Error::from(ImgError::EmptyInput("frame"));
        assert!(e.source().is_some());
        let e = Error::from(FeatureError::DescriptorWidthMismatch { left: 64, right: 128 });
        assert!(e.source().is_some());
    }
}
