//! Per-run diagnostics for the inference core.
//!
//! The pipelines never abort on bad data; they quarantine it and keep
//! going. [`Diagnostics`] is the ledger of how often that happened in a
//! run: NaN scores pushed to the back of a ranking, and per-item
//! fallback predictions emitted for degenerate crops. Counters are
//! atomic so the rayon-parallel scoring loops can record through a
//! shared reference; relaxed ordering is enough because the counts are
//! only read after the parallel section joins.

use taor_model::sync::{AtomicU64, Ordering};

/// Thread-safe counters describing how much a run had to degrade.
///
/// A fresh instance is "clean"; pipelines increment it as they
/// quarantine NaNs or substitute fallback predictions. Snapshot it with
/// [`Diagnostics::report`] for serialisation.
#[derive(Debug, Default)]
pub struct Diagnostics {
    nan_scores: AtomicU64,
    degraded: AtomicU64,
    shed: AtomicU64,
    timeouts: AtomicU64,
}

impl Diagnostics {
    /// A clean ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `n` NaN match scores quarantined (ranked last, never
    /// winning an argmin/argmax).
    pub fn record_nan_scores(&self, n: u64) {
        if n > 0 {
            // Ordering::Relaxed — a statistics counter: only the total
            // matters, and it is read after the parallel section joins.
            self.nan_scores.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Record `n` per-item fallback predictions (degenerate crop,
    /// featureless query, empty match set).
    pub fn record_degraded(&self, n: u64) {
        if n > 0 {
            // Ordering::Relaxed — a statistics counter: only the total
            // matters, and it is read after the parallel section joins.
            self.degraded.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Record `n` requests shed at the admission boundary (bounded
    /// queue full: the service answered 429 instead of queueing
    /// unboundedly).
    pub fn record_shed(&self, n: u64) {
        if n > 0 {
            // Ordering::Relaxed — a statistics counter: only the total
            // matters, and it is read after the parallel section joins.
            self.shed.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Record `n` requests that missed their deadline (answered with a
    /// typed timeout instead of stale work).
    pub fn record_timeouts(&self, n: u64) {
        if n > 0 {
            // Ordering::Relaxed — a statistics counter: only the total
            // matters, and it is read after the parallel section joins.
            self.timeouts.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// NaN scores quarantined so far.
    pub fn nan_scores(&self) -> u64 {
        // Ordering::Relaxed — the pool's AcqRel completion latch already
        // orders these reads after every recording thread's writes.
        self.nan_scores.load(Ordering::Relaxed)
    }

    /// Fallback predictions emitted so far.
    pub fn degraded(&self) -> u64 {
        // Ordering::Relaxed — the pool's AcqRel completion latch already
        // orders these reads after every recording thread's writes.
        self.degraded.load(Ordering::Relaxed)
    }

    /// Requests shed at the admission boundary so far.
    pub fn shed(&self) -> u64 {
        // Ordering::Relaxed — the pool's AcqRel completion latch already
        // orders these reads after every recording thread's writes.
        self.shed.load(Ordering::Relaxed)
    }

    /// Requests that missed their deadline so far.
    pub fn timeouts(&self) -> u64 {
        // Ordering::Relaxed — the pool's AcqRel completion latch already
        // orders these reads after every recording thread's writes.
        self.timeouts.load(Ordering::Relaxed)
    }

    /// Whether the run saw no quarantined NaNs, no fallbacks, no shed
    /// requests and no missed deadlines.
    pub fn is_clean(&self) -> bool {
        self.nan_scores() == 0 && self.degraded() == 0 && self.shed() == 0 && self.timeouts() == 0
    }

    /// Fold another ledger's counts into this one.
    pub fn merge(&self, other: &Diagnostics) {
        self.record_nan_scores(other.nan_scores());
        self.record_degraded(other.degraded());
        self.record_shed(other.shed());
        self.record_timeouts(other.timeouts());
    }

    /// Immutable snapshot for reporting.
    pub fn report(&self) -> DiagnosticsReport {
        DiagnosticsReport {
            nan_scores: self.nan_scores(),
            degraded: self.degraded(),
            shed: self.shed(),
            timeouts: self.timeouts(),
        }
    }
}

impl Clone for Diagnostics {
    fn clone(&self) -> Self {
        Diagnostics {
            nan_scores: AtomicU64::new(self.nan_scores()),
            degraded: AtomicU64::new(self.degraded()),
            shed: AtomicU64::new(self.shed()),
            timeouts: AtomicU64::new(self.timeouts()),
        }
    }
}

/// Serialisable snapshot of a [`Diagnostics`] ledger.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct DiagnosticsReport {
    /// NaN match scores quarantined during ranking.
    pub nan_scores: u64,
    /// Per-item fallback predictions emitted instead of aborting.
    pub degraded: u64,
    /// Requests shed at the service admission boundary (HTTP 429).
    #[serde(default)]
    pub shed: u64,
    /// Requests that missed their deadline (typed timeout responses).
    #[serde(default)]
    pub timeouts: u64,
}

impl DiagnosticsReport {
    /// Whether the run saw no quarantined NaNs, no fallbacks, no shed
    /// requests and no missed deadlines.
    pub fn is_clean(&self) -> bool {
        self.nan_scores == 0 && self.degraded == 0 && self.shed == 0 && self.timeouts == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let d = Diagnostics::new();
        assert!(d.is_clean());
        d.record_nan_scores(3);
        d.record_degraded(1);
        d.record_shed(4);
        d.record_timeouts(2);
        d.record_nan_scores(0); // no-op
        assert_eq!(d.nan_scores(), 3);
        assert_eq!(d.degraded(), 1);
        assert_eq!(d.shed(), 4);
        assert_eq!(d.timeouts(), 2);
        assert!(!d.is_clean());
        let r = d.report();
        assert_eq!(r, DiagnosticsReport { nan_scores: 3, degraded: 1, shed: 4, timeouts: 2 });
        assert!(!r.is_clean());
    }

    #[test]
    fn merge_folds_counts() {
        let a = Diagnostics::new();
        let b = Diagnostics::new();
        b.record_nan_scores(2);
        b.record_degraded(5);
        b.record_shed(1);
        b.record_timeouts(3);
        a.merge(&b);
        a.merge(&b);
        assert_eq!(a.nan_scores(), 4);
        assert_eq!(a.degraded(), 10);
        assert_eq!(a.shed(), 2);
        assert_eq!(a.timeouts(), 6);
    }

    #[test]
    fn shared_across_threads() {
        let d = std::sync::Arc::new(Diagnostics::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let d = d.clone();
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        d.record_nan_scores(1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(d.nan_scores(), 400);
    }

    #[test]
    fn report_serialises() {
        let d = Diagnostics::new();
        d.record_degraded(7);
        let json = serde_json::to_string(&d.report()).unwrap();
        let back: DiagnosticsReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.degraded, 7);
    }
}
