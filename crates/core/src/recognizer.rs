// taor-lint: allow(panic::index) — dense numeric kernel: indices are derived from dimensions validated at the public boundary and bounded by the enclosing loops.
//! High-level recognition facade.
//!
//! The pipelines in this crate are exposed piecemeal for the repro
//! harness; a robot stack wants one object that owns a prepared reference
//! catalog and answers "what is this crop?" with a label, a confidence
//! and a hypothesis ranking. [`Recognizer`] bundles exactly that, over
//! any of the paper's matching pipelines.

use crate::color_only::ColorScorer;
use crate::diag::{Diagnostics, DiagnosticsReport};
use crate::error::{Error, Result};
use crate::eval::top_k_accuracy;
use crate::hybrid::HybridConfig;
use crate::pipeline::{prepare_views, MatchScorer, RefView};
use crate::preprocess::{preprocess, Background, HIST_BINS};
use crate::shape_only::ShapeScorer;
use std::sync::Arc;
use taor_data::{Dataset, ObjectClass};
use taor_imgproc::cmp::nan_last_f64;
use taor_imgproc::image::RgbImage;

/// Which matching pipeline the recognizer runs.
#[derive(Debug, Clone, Copy)]
pub enum Method {
    /// Hu-moment shape matching (the paper's L3 variant by default).
    Shape(ShapeScorer),
    /// RGB-histogram matching.
    Color(ColorScorer),
    /// The hybrid αS + βC weighted sum.
    Hybrid(HybridConfig),
}

impl Default for Method {
    fn default() -> Self {
        // The paper's most consistent configuration.
        Method::Hybrid(HybridConfig::default())
    }
}

/// One recognition result.
#[derive(Debug, Clone)]
pub struct Recognition {
    /// Top-1 label.
    pub class: ObjectClass,
    /// Softmax-style confidence over the per-class best distances
    /// (1 = the best class is far ahead of the runner-up).
    pub confidence: f64,
    /// Full hypothesis ranking, best first.
    pub ranking: Vec<ObjectClass>,
    /// Per-class minimum distances, Table 1 class order.
    pub distances: [f64; ObjectClass::COUNT],
    /// The grounded synset of the top-1 label.
    pub synset: taor_data::Synset,
    /// Whether this answer came from a fallback path (nothing matched:
    /// uniform confidence) rather than a real ranking.
    pub degraded: bool,
}

/// A ready-to-use recogniser over a prepared reference catalog.
///
/// The reference views are `Arc`-shared and the diagnostics ledger is
/// too, so `Clone` is cheap: clones answer queries over the same
/// precomputed gallery and fold their degradation counts into one
/// shared ledger — exactly what a multi-worker service needs.
#[derive(Clone)]
pub struct Recognizer {
    refs: Arc<[RefView]>,
    method: Method,
    query_background: Background,
    diag: Arc<Diagnostics>,
}

impl Recognizer {
    /// Build from a catalog dataset (preprocessed once, white-background
    /// convention) and a matching method. `query_background` states which
    /// convention incoming crops use (black masks for robot/NYU crops).
    ///
    /// Legacy wrapper over [`Recognizer::try_new`]: panics when the
    /// catalog is empty.
    pub fn new(catalog: &Dataset, method: Method, query_background: Background) -> Self {
        match Recognizer::try_new(catalog, method, query_background) {
            Ok(r) => r,
            Err(e) => panic!("{e}"), // taor-lint: allow(panic::panic) — documented legacy wrapper: panicking on Err is this shim's contract; callers wanting Results use the try_* API
        }
    }

    /// Fallible constructor: an empty catalog is an
    /// [`Error::EmptyReference`] instead of a panic.
    pub fn try_new(
        catalog: &Dataset,
        method: Method,
        query_background: Background,
    ) -> Result<Self> {
        if catalog.is_empty() {
            return Err(Error::EmptyReference("reference catalog is empty"));
        }
        Recognizer::from_shared_views(
            prepare_views(catalog, Background::White).into(),
            method,
            query_background,
        )
    }

    /// Build over already-prepared, `Arc`-shared reference views —
    /// preprocess the gallery once at service startup, then hand the
    /// same immutable views to any number of recognisers (one per
    /// method, say) without re-extracting features.
    pub fn from_shared_views(
        refs: Arc<[RefView]>,
        method: Method,
        query_background: Background,
    ) -> Result<Self> {
        if refs.is_empty() {
            return Err(Error::EmptyReference("reference catalog is empty"));
        }
        Ok(Recognizer { refs, method, query_background, diag: Arc::new(Diagnostics::new()) })
    }

    /// The shared reference views, for building further recognisers
    /// over the same gallery.
    pub fn shared_views(&self) -> Arc<[RefView]> {
        Arc::clone(&self.refs)
    }

    /// Snapshot of the degradation counters accumulated over every
    /// [`Recognizer::recognize`] call so far (NaN distances quarantined,
    /// crops answered via the uniform-confidence fallback).
    pub fn diagnostics(&self) -> DiagnosticsReport {
        self.diag.report()
    }

    /// Number of reference views held.
    pub fn reference_count(&self) -> usize {
        self.refs.len()
    }

    fn distance(&self, q: &crate::preprocess::Preprocessed, v: &RefView) -> f64 {
        match &self.method {
            Method::Shape(s) => s.score(q, &v.feat),
            Method::Color(s) => s.score(q, &v.feat),
            Method::Hybrid(h) => {
                h.alpha * h.shape.score(q, &v.feat) + h.beta * h.color.score(q, &v.feat)
            }
        }
    }

    /// Recognise one segmented crop. Never panics: NaN distances are
    /// quarantined (counted in [`Recognizer::diagnostics`], never
    /// winning the argmin) and a crop that matches nothing still yields
    /// a full ranking with uniform confidence, counted as degraded.
    pub fn recognize(&self, crop: &RgbImage) -> Recognition {
        let q = preprocess(crop, self.query_background, HIST_BINS);
        let mut best = [f64::INFINITY; ObjectClass::COUNT];
        let mut nan_seen = 0u64;
        for v in self.refs.iter() {
            let d = self.distance(&q, v);
            let i = v.class.index();
            if d.is_nan() {
                nan_seen += 1;
            } else if d < best[i] {
                best[i] = d;
            }
        }
        self.diag.record_nan_scores(nan_seen);
        let mut order: Vec<usize> = (0..ObjectClass::COUNT).collect();
        order.sort_by(|&a, &b| nan_last_f64(best[a], best[b]));
        let ranking: Vec<ObjectClass> =
            order.iter().copied().filter_map(ObjectClass::from_index).collect();
        let class = ranking[0];

        // Confidence: softmin margin between the best and second-best
        // finite distances (0.5 = tie, → 1 as the gap grows).
        let d1 = best[order[0]];
        let d2 = best[order[1]];
        let mut degraded = false;
        let confidence = if !d1.is_finite() {
            self.diag.record_degraded(1);
            degraded = true;
            1.0 / ObjectClass::COUNT as f64 // nothing matched: uniform
        } else if !d2.is_finite() {
            1.0
        } else {
            let gap = (d2 - d1).max(0.0);
            let scale = d1.abs().max(1e-6);
            1.0 - 0.5 * (-gap / scale).exp()
        };

        Recognition {
            class,
            confidence,
            ranking,
            distances: best,
            synset: class.synset(),
            degraded,
        }
    }

    /// Batch evaluation helper: top-k accuracy over labelled crops.
    pub fn top_k(&self, crops: &[(&RgbImage, ObjectClass)], k: usize) -> f64 {
        let truth: Vec<ObjectClass> = crops.iter().map(|(_, c)| *c).collect();
        let rankings: Vec<Vec<ObjectClass>> =
            crops.iter().map(|(img, _)| self.recognize(img).ranking).collect();
        top_k_accuracy(&truth, &rankings, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taor_data::{nyu_set_subsampled, shapenet_set1};

    fn recognizer() -> Recognizer {
        Recognizer::new(&shapenet_set1(2019), Method::default(), Background::Black)
    }

    #[test]
    fn recognises_crops_with_full_output() {
        let r = recognizer();
        assert_eq!(r.reference_count(), 82);
        let crops = nyu_set_subsampled(2019, 2);
        let rec = r.recognize(&crops.images[0].image);
        assert_eq!(rec.ranking.len(), 10);
        assert_eq!(rec.ranking[0], rec.class);
        assert!((0.0..=1.0).contains(&rec.confidence));
        assert!(!rec.synset.hypernyms.is_empty());
        // Distances are sorted consistently with the ranking.
        let d0 = rec.distances[rec.ranking[0].index()];
        let d1 = rec.distances[rec.ranking[1].index()];
        assert!(d0 <= d1);
    }

    #[test]
    fn beats_chance_on_a_batch() {
        let r = recognizer();
        let crops = nyu_set_subsampled(2019, 12);
        let batch: Vec<(&RgbImage, ObjectClass)> =
            crops.images.iter().map(|i| (&i.image, i.class)).collect();
        let t1 = r.top_k(&batch, 1);
        let t3 = r.top_k(&batch, 3);
        assert!(t1 > 0.10, "top-1 {t1}");
        assert!(t3 > t1, "top-3 {t3} should exceed top-1 {t1}");
    }

    #[test]
    fn shape_and_color_methods_run() {
        let catalog = shapenet_set1(1);
        let crops = nyu_set_subsampled(1, 1);
        for method in [
            Method::Shape(ShapeScorer::ALL[2]),
            Method::Color(ColorScorer::ALL[3]),
            Method::default(),
        ] {
            let r = Recognizer::new(&catalog, method, Background::Black);
            let rec = r.recognize(&crops.images[0].image);
            assert!(rec.confidence.is_finite());
        }
    }

    #[test]
    #[should_panic(expected = "reference catalog is empty")]
    fn empty_catalog_panics() {
        let empty =
            taor_data::Dataset { kind: taor_data::DatasetKind::ShapeNetSet1, images: Vec::new() };
        let _ = Recognizer::new(&empty, Method::default(), Background::Black);
    }

    #[test]
    fn degenerate_crop_gets_uniformish_confidence() {
        let r = recognizer();
        // An all-black crop: preprocessing falls back, distances may all be
        // infinite for shape; the recogniser must stay well-defined.
        let crop = RgbImage::new(32, 32);
        let rec = r.recognize(&crop);
        assert!(rec.confidence.is_finite());
        assert_eq!(rec.ranking.len(), 10);
        // The degraded flag agrees with the ledger.
        assert_eq!(rec.degraded, r.diagnostics().degraded > 0);
    }

    #[test]
    fn clones_share_the_gallery_and_the_ledger() {
        let r = recognizer();
        let clone = r.clone();
        assert!(Arc::ptr_eq(&r.shared_views(), &clone.shared_views()));
        // A degraded answer recorded through the clone is visible on the
        // original's ledger: the counters are one shared ledger.
        let rec = clone.recognize(&RgbImage::new(32, 32));
        if rec.degraded {
            assert!(r.diagnostics().degraded >= 1);
        }
        // Prepared views feed a second method with zero re-preprocessing.
        let color = Recognizer::from_shared_views(
            r.shared_views(),
            Method::Color(ColorScorer::ALL[0]),
            Background::Black,
        )
        .unwrap();
        assert_eq!(color.reference_count(), 82);
        assert!(color.recognize(&nyu_set_subsampled(2019, 1).images[0].image).ranking.len() == 10);
    }

    #[test]
    fn empty_shared_views_are_a_typed_error() {
        let res =
            Recognizer::from_shared_views(Vec::new().into(), Method::default(), Background::Black);
        assert!(matches!(res.err(), Some(Error::EmptyReference(_))));
    }
}
