//! High-level recognition facade.
//!
//! The pipelines in this crate are exposed piecemeal for the repro
//! harness; a robot stack wants one object that owns a prepared reference
//! catalog and answers "what is this crop?" with a label, a confidence
//! and a hypothesis ranking. [`Recognizer`] bundles exactly that, over
//! any of the paper's matching pipelines.

use crate::color_only::ColorScorer;
use crate::eval::top_k_accuracy;
use crate::hybrid::HybridConfig;
use crate::pipeline::{prepare_views, MatchScorer, RefView};
use crate::preprocess::{preprocess, Background, HIST_BINS};
use crate::shape_only::ShapeScorer;
use taor_data::{Dataset, ObjectClass};
use taor_imgproc::image::RgbImage;

/// Which matching pipeline the recognizer runs.
#[derive(Debug, Clone, Copy)]
pub enum Method {
    /// Hu-moment shape matching (the paper's L3 variant by default).
    Shape(ShapeScorer),
    /// RGB-histogram matching.
    Color(ColorScorer),
    /// The hybrid αS + βC weighted sum.
    Hybrid(HybridConfig),
}

impl Default for Method {
    fn default() -> Self {
        // The paper's most consistent configuration.
        Method::Hybrid(HybridConfig::default())
    }
}

/// One recognition result.
#[derive(Debug, Clone)]
pub struct Recognition {
    /// Top-1 label.
    pub class: ObjectClass,
    /// Softmax-style confidence over the per-class best distances
    /// (1 = the best class is far ahead of the runner-up).
    pub confidence: f64,
    /// Full hypothesis ranking, best first.
    pub ranking: Vec<ObjectClass>,
    /// Per-class minimum distances, Table 1 class order.
    pub distances: [f64; ObjectClass::COUNT],
    /// The grounded synset of the top-1 label.
    pub synset: taor_data::Synset,
}

/// A ready-to-use recogniser over a prepared reference catalog.
pub struct Recognizer {
    refs: Vec<RefView>,
    method: Method,
    query_background: Background,
}

impl Recognizer {
    /// Build from a catalog dataset (preprocessed once, white-background
    /// convention) and a matching method. `query_background` states which
    /// convention incoming crops use (black masks for robot/NYU crops).
    pub fn new(catalog: &Dataset, method: Method, query_background: Background) -> Self {
        assert!(!catalog.is_empty(), "reference catalog is empty");
        Recognizer { refs: prepare_views(catalog, Background::White), method, query_background }
    }

    /// Number of reference views held.
    pub fn reference_count(&self) -> usize {
        self.refs.len()
    }

    fn distance(&self, q: &crate::preprocess::Preprocessed, v: &RefView) -> f64 {
        match &self.method {
            Method::Shape(s) => s.score(q, &v.feat),
            Method::Color(s) => s.score(q, &v.feat),
            Method::Hybrid(h) => {
                h.alpha * h.shape.score(q, &v.feat) + h.beta * h.color.score(q, &v.feat)
            }
        }
    }

    /// Recognise one segmented crop.
    pub fn recognize(&self, crop: &RgbImage) -> Recognition {
        let q = preprocess(crop, self.query_background, HIST_BINS);
        let mut best = [f64::INFINITY; ObjectClass::COUNT];
        for v in &self.refs {
            let d = self.distance(&q, v);
            let i = v.class.index();
            if d < best[i] {
                best[i] = d;
            }
        }
        let mut order: Vec<usize> = (0..ObjectClass::COUNT).collect();
        order.sort_by(|&a, &b| best[a].partial_cmp(&best[b]).expect("finite or inf"));
        let ranking: Vec<ObjectClass> =
            order.iter().map(|&i| ObjectClass::from_index(i).expect("index below COUNT")).collect();
        let class = ranking[0];

        // Confidence: softmin margin between the best and second-best
        // finite distances (0.5 = tie, → 1 as the gap grows).
        let d1 = best[order[0]];
        let d2 = best[order[1]];
        let confidence = if !d1.is_finite() {
            1.0 / ObjectClass::COUNT as f64 // nothing matched: uniform
        } else if !d2.is_finite() {
            1.0
        } else {
            let gap = (d2 - d1).max(0.0);
            let scale = d1.abs().max(1e-6);
            1.0 - 0.5 * (-gap / scale).exp()
        };

        Recognition { class, confidence, ranking, distances: best, synset: class.synset() }
    }

    /// Batch evaluation helper: top-k accuracy over labelled crops.
    pub fn top_k(&self, crops: &[(&RgbImage, ObjectClass)], k: usize) -> f64 {
        let truth: Vec<ObjectClass> = crops.iter().map(|(_, c)| *c).collect();
        let rankings: Vec<Vec<ObjectClass>> =
            crops.iter().map(|(img, _)| self.recognize(img).ranking).collect();
        top_k_accuracy(&truth, &rankings, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taor_data::{nyu_set_subsampled, shapenet_set1};

    fn recognizer() -> Recognizer {
        Recognizer::new(&shapenet_set1(2019), Method::default(), Background::Black)
    }

    #[test]
    fn recognises_crops_with_full_output() {
        let r = recognizer();
        assert_eq!(r.reference_count(), 82);
        let crops = nyu_set_subsampled(2019, 2);
        let rec = r.recognize(&crops.images[0].image);
        assert_eq!(rec.ranking.len(), 10);
        assert_eq!(rec.ranking[0], rec.class);
        assert!((0.0..=1.0).contains(&rec.confidence));
        assert!(!rec.synset.hypernyms.is_empty());
        // Distances are sorted consistently with the ranking.
        let d0 = rec.distances[rec.ranking[0].index()];
        let d1 = rec.distances[rec.ranking[1].index()];
        assert!(d0 <= d1);
    }

    #[test]
    fn beats_chance_on_a_batch() {
        let r = recognizer();
        let crops = nyu_set_subsampled(2019, 12);
        let batch: Vec<(&RgbImage, ObjectClass)> =
            crops.images.iter().map(|i| (&i.image, i.class)).collect();
        let t1 = r.top_k(&batch, 1);
        let t3 = r.top_k(&batch, 3);
        assert!(t1 > 0.10, "top-1 {t1}");
        assert!(t3 > t1, "top-3 {t3} should exceed top-1 {t1}");
    }

    #[test]
    fn shape_and_color_methods_run() {
        let catalog = shapenet_set1(1);
        let crops = nyu_set_subsampled(1, 1);
        for method in [
            Method::Shape(ShapeScorer::ALL[2]),
            Method::Color(ColorScorer::ALL[3]),
            Method::default(),
        ] {
            let r = Recognizer::new(&catalog, method, Background::Black);
            let rec = r.recognize(&crops.images[0].image);
            assert!(rec.confidence.is_finite());
        }
    }

    #[test]
    #[should_panic(expected = "reference catalog is empty")]
    fn empty_catalog_panics() {
        let empty =
            taor_data::Dataset { kind: taor_data::DatasetKind::ShapeNetSet1, images: Vec::new() };
        let _ = Recognizer::new(&empty, Method::default(), Background::Black);
    }

    #[test]
    fn degenerate_crop_gets_uniformish_confidence() {
        let r = recognizer();
        // An all-black crop: preprocessing falls back, distances may all be
        // infinite for shape; the recogniser must stay well-defined.
        let crop = RgbImage::new(32, 32);
        let rec = r.recognize(&crop);
        assert!(rec.confidence.is_finite());
        assert_eq!(rec.ranking.len(), 10);
    }
}
