//! Pipeline (i): shape-only matching (paper §3.2).
//!
//! "Contours extracted from input samples were matched through the OpenCV
//! built-in similarity function based on Hu moments [15] … We tested
//! three different variants of this method, with distance metric between
//! image moments set to be the L1, L2, or L3 norm respectively."

use crate::pipeline::MatchScorer;
use crate::preprocess::Preprocessed;
use taor_imgproc::moments::{match_shapes, match_shapes_bounded, MatchShapesMode};

/// Hu-moment shape scorer; the paper's L1/L2/L3 variants map to
/// [`MatchShapesMode::I1`]/[`I2`](MatchShapesMode::I2)/[`I3`](MatchShapesMode::I3).
#[derive(Debug, Clone, Copy)]
pub struct ShapeScorer {
    pub mode: MatchShapesMode,
}

impl ShapeScorer {
    /// The three variants in paper order (L1, L2, L3).
    pub const ALL: [ShapeScorer; 3] = [
        ShapeScorer { mode: MatchShapesMode::I1 },
        ShapeScorer { mode: MatchShapesMode::I2 },
        ShapeScorer { mode: MatchShapesMode::I3 },
    ];

    /// Table 2 row label.
    pub fn label(&self) -> &'static str {
        match self.mode {
            MatchShapesMode::I1 => "Shape only L1",
            MatchShapesMode::I2 => "Shape only L2",
            MatchShapesMode::I3 => "Shape only L3",
        }
    }
}

impl MatchScorer for ShapeScorer {
    fn score(&self, query: &Preprocessed, view: &Preprocessed) -> f64 {
        match_shapes(&query.hu, &view.hu, self.mode)
    }

    fn score_bounded(&self, query: &Preprocessed, view: &Preprocessed, bound: f64) -> f64 {
        // All three Hu distances accumulate monotonically, so the
        // bounded kernel can abandon a pair mid-scan.
        match_shapes_bounded(&query.hu, &view.hu, self.mode, bound)
    }

    fn name(&self) -> String {
        self.label().to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{classify_per_view, prepare_views, truth_of};
    use crate::preprocess::Background;
    use taor_data::shapenet_set1;

    #[test]
    fn labels_match_table2() {
        let labels: Vec<_> = ShapeScorer::ALL.iter().map(|s| s.label()).collect();
        assert_eq!(labels, ["Shape only L1", "Shape only L2", "Shape only L3"]);
    }

    #[test]
    fn identical_views_score_zero() {
        let views = prepare_views(&shapenet_set1(1), Background::White);
        let s = ShapeScorer { mode: MatchShapesMode::I2 };
        assert_eq!(s.score(&views[0].feat, &views[0].feat), 0.0);
    }

    #[test]
    fn self_classification_beats_chance_strongly() {
        // Matching SNS1 against itself: the query view is in the reference
        // set at distance 0, so accuracy is 1.0 (ties cannot beat 0 first).
        let views = prepare_views(&shapenet_set1(2), Background::White);
        for scorer in ShapeScorer::ALL {
            let preds = classify_per_view(&views, &views, &scorer);
            let truth = truth_of(&views);
            let correct = preds.iter().zip(&truth).filter(|(p, t)| p == t).count();
            assert!(correct as f64 / truth.len() as f64 > 0.9, "{}: {correct}/82", scorer.name());
        }
    }
}
