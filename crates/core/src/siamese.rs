// taor-lint: allow(panic::index) — dense numeric kernel: indices are derived from dimensions validated at the public boundary and bounded by the enclosing loops.
//! Pipeline (v): deep neural inexact matching (paper §3.4).
//!
//! Trains the Normalized-X-Corr network of `taor-nn` on SNS2 image pairs
//! and evaluates it on the SNS1 and NYU+SNS1 pair sets, reproducing the
//! paper's Table 4. Also provides a cosine-similarity "exact matching"
//! head over the same shared towers — the classic Siamese baseline the
//! NIPS paper argues against — as an ablation.

use crate::eval::{evaluate_binary, BinaryEvaluation};
use rayon::prelude::*;
use std::collections::BTreeMap;
use taor_data::{Dataset, ImagePair};
use taor_nn::{train, NetConfig, NormXCorrNet, PairSample, Tensor, TrainConfig, TrainReport};

/// Pairs scored per batched head pass (and images per batched tower
/// pass) during evaluation.
const EVAL_BATCH: usize = 16;

/// Full configuration of one Siamese experiment.
#[derive(Debug, Clone)]
pub struct SiameseConfig {
    pub net: NetConfig,
    pub train: TrainConfig,
    /// Number of training pairs drawn from SNS2 (paper: 9,450).
    pub n_train_pairs: usize,
    /// Pair-sampling seed.
    pub seed: u64,
}

impl Default for SiameseConfig {
    fn default() -> Self {
        SiameseConfig {
            net: NetConfig::default(),
            train: TrainConfig::default(),
            n_train_pairs: taor_data::TRAIN_PAIRS,
            seed: 2019,
        }
    }
}

impl SiameseConfig {
    /// A configuration small enough for CI and the quick repro mode:
    /// fewer pairs, fewer epochs, same architecture.
    pub fn quick() -> Self {
        SiameseConfig {
            net: NetConfig {
                height: 32,
                width: 24,
                c1: 8,
                c2: 10,
                c3: 10,
                dense: 32,
                ..NetConfig::default()
            },
            train: TrainConfig {
                max_epochs: 4,
                batch_size: 16,
                learning_rate: 1e-4,
                ..TrainConfig::default()
            },
            n_train_pairs: 600,
            seed: 2019,
        }
    }

    /// A single-CPU-feasible middle ground (≈ 2 min): 2,000 pairs and a
    /// dozen epochs — enough for the in-domain signal to emerge while the
    /// cross-domain failure persists.
    pub fn medium() -> Self {
        SiameseConfig {
            net: NetConfig {
                height: 32,
                width: 24,
                c1: 8,
                c2: 10,
                c3: 10,
                dense: 32,
                ..NetConfig::default()
            },
            train: TrainConfig {
                max_epochs: 12,
                batch_size: 16,
                learning_rate: 1e-4,
                ..TrainConfig::default()
            },
            n_train_pairs: 2_000,
            seed: 2019,
        }
    }
}

/// Convert an RGB image into the network's `[1, 3, H, W]` input tensor
/// (resized, scaled to `[-0.5, 0.5]`).
pub fn image_to_tensor(img: &taor_imgproc::RgbImage, cfg: &NetConfig) -> Tensor {
    let resized =
        taor_imgproc::resize::resize_bilinear_rgb(img, cfg.width as u32, cfg.height as u32)
            .expect("net dims are nonzero"); // taor-lint: allow(panic::expect) — invariant expect: the message states why this cannot fail on valid state
    let (w, h) = (cfg.width, cfg.height);
    let mut data = vec![0.0f32; 3 * w * h];
    for (x, y, px) in resized.enumerate_pixels() {
        for c in 0..3 {
            data[c * w * h + y as usize * w + x as usize] = px[c] as f32 / 255.0 - 0.5;
        }
    }
    // taor-lint: allow(panic::expect) — invariant expect: the message states why this cannot fail on valid state
    Tensor::from_vec(&[1, 3, h, w], data).expect("length matches by construction")
}

/// Convert labelled image pairs to network samples (parallel).
pub fn pairs_to_samples(pairs: &[ImagePair<'_>], cfg: &NetConfig) -> Vec<PairSample> {
    pairs
        .par_iter()
        .map(|p| PairSample {
            a: image_to_tensor(&p.a.image, cfg),
            b: image_to_tensor(&p.b.image, cfg),
            label: p.label,
        })
        .collect()
}

/// Train the Normalized-X-Corr net on SNS2 pairs per the paper's recipe.
///
/// Legacy wrapper over [`try_train_siamese`]: panics when the configured
/// input resolution is too small for the architecture.
pub fn train_siamese(
    sns2: &Dataset,
    cfg: &SiameseConfig,
    on_epoch: impl FnMut(&taor_nn::EpochStats),
) -> (NormXCorrNet, TrainReport) {
    match try_train_siamese(sns2, cfg, on_epoch) {
        Ok(out) => out,
        Err(e) => panic!("{e}"), // taor-lint: allow(panic::panic) — documented legacy wrapper: panicking on Err is this shim's contract; callers wanting Results use the try_* API
    }
}

/// Fallible [`train_siamese`]: an undersized network input resolution is
/// a typed [`crate::Error::Nn`] ([`taor_nn::TensorError::InputTooSmall`])
/// instead of a panic.
pub fn try_train_siamese(
    sns2: &Dataset,
    cfg: &SiameseConfig,
    on_epoch: impl FnMut(&taor_nn::EpochStats),
) -> crate::error::Result<(NormXCorrNet, TrainReport)> {
    let mut net = NormXCorrNet::new(cfg.net.clone())?;
    let pairs = taor_data::training_pairs(sns2, cfg.n_train_pairs, cfg.seed);
    let samples = pairs_to_samples(&pairs, &cfg.net);
    let report = train(&mut net, &samples, &cfg.train, on_epoch);
    Ok((net, report))
}

/// Evaluate a trained net on labelled pairs, producing Table-4-style
/// binary metrics.
///
/// # Panics
/// Panics on malformed inputs; fallible callers should use
/// [`try_evaluate_siamese`].
pub fn evaluate_siamese(
    net: &NormXCorrNet,
    pairs: &[ImagePair<'_>],
    cfg: &NetConfig,
) -> BinaryEvaluation {
    // taor-lint: allow(panic::panic) — documented legacy wrapper: panicking on Err is this shim's contract; callers wanting Results use the try_* API
    try_evaluate_siamese(net, pairs, cfg).unwrap_or_else(|e| panic!("evaluate_siamese: {e}"))
}

/// Fallible [`evaluate_siamese`] with shared-tower deduplication.
///
/// The re-identification protocol reuses every catalog image in many
/// pairs, so the expensive half of the network — the shared conv tower —
/// is run **once per distinct image** (identity-keyed, in pool-parallel
/// batches) and each pair is then scored through the light NormXCorr
/// head from the precomputed features, also in pool-parallel batches.
/// Predictions are bit-identical to the naive pair-at-a-time path:
/// every layer's per-item fold is independent of batch grouping.
pub fn try_evaluate_siamese(
    net: &NormXCorrNet,
    pairs: &[ImagePair<'_>],
    cfg: &NetConfig,
) -> crate::error::Result<BinaryEvaluation> {
    // Identity-keyed image dedup (pairs borrow from a shared catalog, so
    // the address is the identity; first-seen order keeps this
    // deterministic).
    let mut index: BTreeMap<usize, usize> = BTreeMap::new();
    let mut unique: Vec<&taor_data::LabeledImage> = Vec::new();
    for p in pairs {
        for img in [p.a, p.b] {
            let key = img as *const taor_data::LabeledImage as usize;
            index.entry(key).or_insert_with(|| {
                unique.push(img);
                unique.len() - 1
            });
        }
    }

    // Each distinct image through the tower exactly once.
    let tensors: Vec<Tensor> = unique.par_iter().map(|e| image_to_tensor(&e.image, cfg)).collect();
    let embedded: Vec<crate::error::Result<Vec<Tensor>>> = tensors
        .par_chunks(EVAL_BATCH)
        .map(|chunk| {
            let refs: Vec<&Tensor> = chunk.iter().collect();
            let batch = stack_rows(&refs)?;
            let feats = net.tower_embed(&batch)?;
            split_rows(&feats)
        })
        .collect();
    let mut features = Vec::with_capacity(unique.len());
    for r in embedded {
        features.extend(r?);
    }

    // Score the pairs through the head from the precomputed features.
    let scored: Vec<crate::error::Result<Vec<usize>>> = pairs
        .par_chunks(EVAL_BATCH)
        .map(|chunk| {
            let fa: Vec<&Tensor> = chunk
                .iter()
                .map(|p| &features[index[&(p.a as *const taor_data::LabeledImage as usize)]])
                .collect();
            let fb: Vec<&Tensor> = chunk
                .iter()
                .map(|p| &features[index[&(p.b as *const taor_data::LabeledImage as usize)]])
                .collect();
            let probs = net.predict_similar_features(&stack_rows(&fa)?, &stack_rows(&fb)?)?;
            Ok(probs.into_iter().map(|p| usize::from(p > 0.5)).collect::<Vec<_>>())
        })
        .collect();
    let mut preds = Vec::with_capacity(pairs.len());
    for r in scored {
        preds.extend(r?);
    }

    let truth: Vec<usize> = pairs.iter().map(|p| p.label).collect();
    Ok(evaluate_binary(&truth, &preds))
}

/// Stack `[1, …]` tensors into one `[B, …]` batch
/// ([`Tensor::stack_batch`], lifted into the crate error type).
fn stack_rows(items: &[&Tensor]) -> crate::error::Result<Tensor> {
    Ok(Tensor::stack_batch(items)?)
}

/// Split a `[B, …]` batch back into `B` tensors of leading dimension 1.
fn split_rows(batch: &Tensor) -> crate::error::Result<Vec<Tensor>> {
    Ok(batch.split_batch()?)
}

// ---------------------------------------------------------------------
// Cosine ablation: exact matching over mean-pooled image embeddings.
// ---------------------------------------------------------------------

/// A classic "exact matching" Siamese baseline: images are embedded by
/// channel-pooled colour statistics over a grid (an untrained stand-in
/// for shared conv towers), compared by cosine similarity, and thresholded
/// at a value fitted on the training pairs. Serves as the ablation
/// counterpart to Normalized-X-Corr's inexact matching.
#[derive(Debug, Clone)]
pub struct CosineSiamese {
    pub threshold: f32,
    grid: usize,
}

impl CosineSiamese {
    /// Fit the decision threshold on labelled pairs by sweeping the score
    /// range for maximum training accuracy.
    ///
    /// # Panics
    /// Panics when `grid` is zero; fallible callers should use
    /// [`Self::try_fit`].
    pub fn fit(pairs: &[ImagePair<'_>], grid: usize) -> Self {
        // taor-lint: allow(panic::panic) — documented legacy wrapper: panicking on Err is this shim's contract; callers wanting Results use the try_* API
        Self::try_fit(pairs, grid).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Self::fit`] using a sort-based single scan.
    ///
    /// Scores are sorted once and walked in lockstep with the ascending
    /// threshold grid, maintaining `accuracy(t) = (label-1 pairs with
    /// s > t) + (label-0 pairs with s ≤ t)` incrementally —
    /// `O((P + G) log P)` instead of the naive `O(P · G)` rescan, with
    /// integer-identical accuracy counts and the same earliest-maximum
    /// tie-break, so the fitted threshold is bit-identical. NaN scores
    /// sort first: a NaN never satisfies `s > t`, i.e. it predicts 0 at
    /// every threshold, exactly like a score below the whole grid.
    pub fn try_fit(pairs: &[ImagePair<'_>], grid: usize) -> crate::error::Result<Self> {
        if grid < 1 {
            return Err(crate::error::Error::InvalidParameter {
                name: "grid",
                msg: "grid must be >= 1".into(),
            });
        }
        let model = CosineSiamese { threshold: 0.0, grid };
        let mut scores: Vec<(f32, usize)> =
            pairs.par_iter().map(|p| (model.score(&p.a.image, &p.b.image), p.label)).collect();
        scores.sort_by(|a, b| match (a.0.is_nan(), b.0.is_nan()) {
            (true, false) => std::cmp::Ordering::Less,
            (false, true) => std::cmp::Ordering::Greater,
            _ => a.0.total_cmp(&b.0),
        });
        let total1 = scores.iter().filter(|&&(_, l)| l == 1).count();
        let mut idx = 0usize; // scores consumed into the `s ≤ t` prefix
        let mut ones_le = 0usize; // label-1 pairs within that prefix
        let mut best_t = 0.0f32;
        let mut best_acc = 0usize;
        for i in 0..=40 {
            let t = -1.0 + i as f32 * 0.05;
            // `s ≤ t` *or NaN*: NaN sorts first and must be consumed
            // into the predict-0 prefix, exactly like a score below the
            // whole grid (`!(s > t)` in the naive sweep).
            while idx < scores.len() && (scores[idx].0.is_nan() || scores[idx].0 <= t) {
                if scores[idx].1 == 1 {
                    ones_le += 1;
                }
                idx += 1;
            }
            let acc = (total1 - ones_le) + (idx - ones_le);
            if acc > best_acc {
                best_acc = acc;
                best_t = t;
            }
        }
        Ok(CosineSiamese { threshold: best_t, grid })
    }

    /// Grid-pooled RGB embedding.
    fn embed(&self, img: &taor_imgproc::RgbImage) -> Vec<f32> {
        let g = self.grid as u32;
        let (w, h) = img.dimensions();
        let mut out = vec![0.0f32; (g * g * 3) as usize];
        let mut counts = vec![0u32; (g * g) as usize];
        for (x, y, px) in img.enumerate_pixels() {
            let gx = (x * g / w).min(g - 1);
            let gy = (y * g / h).min(g - 1);
            let cell = (gy * g + gx) as usize;
            counts[cell] += 1;
            for c in 0..3 {
                out[cell * 3 + c] += px[c] as f32 / 255.0;
            }
        }
        for (cell, &n) in counts.iter().enumerate() {
            if n > 0 {
                for c in 0..3 {
                    out[cell * 3 + c] /= n as f32;
                }
            }
        }
        out
    }

    /// Cosine similarity of the two embeddings.
    pub fn score(&self, a: &taor_imgproc::RgbImage, b: &taor_imgproc::RgbImage) -> f32 {
        let ea = self.embed(a);
        let eb = self.embed(b);
        let dot: f32 = ea.iter().zip(&eb).map(|(x, y)| x * y).sum();
        let na: f32 = ea.iter().map(|v| v * v).sum::<f32>().sqrt();
        let nb: f32 = eb.iter().map(|v| v * v).sum::<f32>().sqrt();
        if na < 1e-9 || nb < 1e-9 {
            0.0
        } else {
            dot / (na * nb)
        }
    }

    /// Predict 1 = similar / 0 = dissimilar for each pair.
    pub fn predict(&self, pairs: &[ImagePair<'_>]) -> Vec<usize> {
        pairs
            .par_iter()
            .map(|p| usize::from(self.score(&p.a.image, &p.b.image) > self.threshold))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taor_data::{shapenet_set1, shapenet_set2, sns1_test_pairs, training_pairs};

    #[test]
    fn image_to_tensor_has_net_shape() {
        let sns1 = shapenet_set1(1);
        let cfg = NetConfig { height: 32, width: 24, ..NetConfig::default() };
        let t = image_to_tensor(&sns1.images[0].image, &cfg);
        assert_eq!(t.shape(), &[1, 3, 32, 24]);
        assert!(t.data().iter().all(|v| (-0.5..=0.5).contains(v)));
    }

    #[test]
    fn quick_training_smoke() {
        let sns2 = shapenet_set2(1);
        let mut cfg = SiameseConfig::quick();
        cfg.n_train_pairs = 60;
        cfg.train.max_epochs = 1;
        let (net, report) = train_siamese(&sns2, &cfg, |_| {});
        assert_eq!(report.epochs.len(), 1);
        assert!(report.epochs[0].mean_loss.is_finite());
        // Evaluate on a small pair subset.
        let sns1 = shapenet_set1(1);
        let pairs = sns1_test_pairs(&sns1);
        let eval = evaluate_siamese(&net, &pairs[..100], &cfg.net);
        assert!(eval.accuracy >= 0.0 && eval.accuracy <= 1.0);
    }

    #[test]
    fn cosine_baseline_fits_and_predicts() {
        let sns2 = shapenet_set2(2);
        let pairs = training_pairs(&sns2, 200, 3);
        let model = CosineSiamese::fit(&pairs, 4);
        let preds = model.predict(&pairs[..50]);
        assert_eq!(preds.len(), 50);
        assert!(model.threshold >= -1.0 && model.threshold <= 1.0);
    }

    #[test]
    fn cosine_identical_images_score_one() {
        let sns1 = shapenet_set1(3);
        let model = CosineSiamese { threshold: 0.5, grid: 4 };
        let img = &sns1.images[0].image;
        assert!((model.score(img, img) - 1.0).abs() < 1e-5);
    }

    #[test]
    #[should_panic(expected = "grid must be >= 1")]
    fn zero_grid_panics() {
        let sns2 = shapenet_set2(4);
        let pairs = training_pairs(&sns2, 10, 1);
        let _ = CosineSiamese::fit(&pairs, 0);
    }

    #[test]
    fn try_fit_zero_grid_is_typed_error() {
        let sns2 = shapenet_set2(4);
        let pairs = training_pairs(&sns2, 10, 1);
        assert!(matches!(
            CosineSiamese::try_fit(&pairs, 0),
            Err(crate::error::Error::InvalidParameter { name: "grid", .. })
        ));
    }

    /// Regression pin for the sort-based fit: the fitted threshold must
    /// be bit-identical to the naive 41-point rescan it replaced.
    #[test]
    fn sorted_fit_matches_naive_sweep_bitwise() {
        let sns2 = shapenet_set2(5);
        let pairs = training_pairs(&sns2, 300, 7);
        let fitted = CosineSiamese::fit(&pairs, 4);

        let probe = CosineSiamese { threshold: 0.0, grid: 4 };
        let scores: Vec<(f32, usize)> =
            pairs.iter().map(|p| (probe.score(&p.a.image, &p.b.image), p.label)).collect();
        let mut best_t = 0.0f32;
        let mut best_acc = 0usize;
        for i in 0..=40 {
            let t = -1.0 + i as f32 * 0.05;
            let acc = scores.iter().filter(|&&(s, l)| usize::from(s > t) == l).count();
            if acc > best_acc {
                best_acc = acc;
                best_t = t;
            }
        }
        assert_eq!(fitted.threshold.to_bits(), best_t.to_bits());
    }

    /// The dedup + precomputed-feature evaluation path must agree exactly
    /// with the naive pair-at-a-time scoring.
    #[test]
    fn dedup_eval_matches_naive_pair_scoring() {
        let sns2 = shapenet_set2(1);
        let mut cfg = SiameseConfig::quick();
        cfg.n_train_pairs = 40;
        cfg.train.max_epochs = 1;
        let (net, _) = train_siamese(&sns2, &cfg, |_| {});
        let sns1 = shapenet_set1(1);
        let pairs = sns1_test_pairs(&sns1);
        let subset = &pairs[..120];

        let deduped = try_evaluate_siamese(&net, subset, &cfg.net).unwrap();

        let samples = pairs_to_samples(subset, &cfg.net);
        let preds = taor_nn::predict_labels(&net, &samples);
        let truth: Vec<usize> = subset.iter().map(|p| p.label).collect();
        let naive = evaluate_binary(&truth, &preds);

        assert_eq!(deduped.accuracy.to_bits(), naive.accuracy.to_bits());
        assert_eq!(deduped.similar.precision.to_bits(), naive.similar.precision.to_bits());
        assert_eq!(deduped.similar.recall.to_bits(), naive.similar.recall.to_bits());
        assert_eq!(deduped.dissimilar.recall.to_bits(), naive.dissimilar.recall.to_bits());
    }
}
