// taor-lint: allow(panic::index) — dense numeric kernel: indices are derived from dimensions validated at the public boundary and bounded by the enclosing loops.
//! Scene segmentation front-end: from a whole robot frame to black-mask
//! object crops — the step the paper's controlled experiments skipped
//! ("leaving potential error-propagation from segmentation faults out of
//! the picture") and whose cost this module makes measurable.
//!
//! Approach (classical, matching the paper's pre-deep-segmentation era):
//! estimate the dominant background colours from the frame border, mark
//! pixels far from both as foreground, clean the mask with a
//! morphological opening, label 8-connected components, and emit one
//! black-masked crop per sufficiently large component — the same format
//! the NYU extraction script produced, so the recognition pipelines apply
//! unchanged.

use crate::error::{Error, Result};
use rayon::prelude::*;
use taor_data::{ObjectClass, RoomScene};
use taor_imgproc::image::{GrayImage, Rect, RgbImage};
use taor_imgproc::label::label_components;
use taor_imgproc::morphology::open;

/// One segmented region of a frame.
#[derive(Debug, Clone)]
pub struct SegmentedObject {
    /// Bounding box in frame coordinates.
    pub bbox: Rect,
    /// Black-masked RGB crop (NYU extraction format).
    pub crop: RgbImage,
    /// Component pixel count.
    pub area: usize,
}

/// Segmentation parameters.
#[derive(Debug, Clone)]
pub struct SegmentConfig {
    /// Colour distance (L1 over RGB) beyond which a pixel is foreground.
    pub color_threshold: u32,
    /// Morphological opening radius for mask cleanup.
    pub open_radius: u32,
    /// Minimum component area in pixels.
    pub min_area: usize,
    /// Number of dominant border colours modelled as background.
    pub background_colors: usize,
}

impl Default for SegmentConfig {
    fn default() -> Self {
        SegmentConfig { color_threshold: 40, open_radius: 1, min_area: 150, background_colors: 3 }
    }
}

/// Estimate the `k` dominant border colours by coarse RGB quantisation
/// (5-bit per channel buckets, averaged).
pub fn border_colors(img: &RgbImage, k: usize) -> Vec<[u8; 3]> {
    use std::collections::BTreeMap;
    let (w, h) = img.dimensions();
    let mut buckets: BTreeMap<(u8, u8, u8), (u64, [u64; 3])> = BTreeMap::new();
    let mut push = |px: [u8; 3]| {
        let key = (px[0] >> 3, px[1] >> 3, px[2] >> 3);
        let e = buckets.entry(key).or_insert((0, [0; 3]));
        e.0 += 1;
        for (acc, &v) in e.1.iter_mut().zip(&px) {
            *acc += v as u64;
        }
    };
    for x in 0..w {
        push(img.pixel(x, 0));
        push(img.pixel(x, h - 1));
    }
    for y in 0..h {
        push(img.pixel(0, y));
        push(img.pixel(w - 1, y));
    }
    // BTreeMap yields buckets in key order, and the sort is stable, so
    // equally-populous buckets resolve in key order on every run.
    let mut sorted: Vec<_> = buckets.into_values().collect();
    sorted.sort_by_key(|&(n, _)| std::cmp::Reverse(n));
    sorted
        .into_iter()
        .take(k)
        .map(|(n, sums)| [(sums[0] / n) as u8, (sums[1] / n) as u8, (sums[2] / n) as u8])
        .collect()
}

#[inline]
fn l1(a: [u8; 3], b: [u8; 3]) -> u32 {
    a.iter().zip(&b).map(|(&x, &y)| (x as i32 - y as i32).unsigned_abs()).sum()
}

/// Foreground mask: pixels far from every modelled background colour.
///
/// Legacy wrapper over [`try_foreground_mask`]: panics when the
/// background colour model comes out empty (`background_colors == 0`).
pub fn foreground_mask(img: &RgbImage, cfg: &SegmentConfig) -> GrayImage {
    match try_foreground_mask(img, cfg) {
        Ok(mask) => mask,
        Err(e) => panic!("{e}"), // taor-lint: allow(panic::panic) — documented legacy wrapper: panicking on Err is this shim's contract; callers wanting Results use the try_* API
    }
}

/// Fallible [`foreground_mask`]: an empty background colour model is an
/// [`Error::EmptyInput`] instead of an all-foreground mask.
pub fn try_foreground_mask(img: &RgbImage, cfg: &SegmentConfig) -> Result<GrayImage> {
    let bg = border_colors(img, cfg.background_colors);
    mask_against(img, &bg, cfg.color_threshold)
}

/// Foreground mask against an explicit background colour model (e.g. the
/// model of a whole frame, applied to a crop of it).
///
/// An empty model is an [`Error::EmptyInput`]: with nothing to compare
/// against, every pixel would sit at infinite distance and the whole
/// frame would silently be declared foreground — a full-frame
/// "detection" that poisons downstream scene metrics.
pub fn mask_against(img: &RgbImage, background: &[[u8; 3]], threshold: u32) -> Result<GrayImage> {
    if background.is_empty() {
        return Err(Error::EmptyInput("background color model"));
    }
    let (w, h) = img.dimensions();
    let mut mask = GrayImage::new(w, h);
    for (x, y, px) in img.enumerate_pixels() {
        let min_d = background.iter().map(|&b| l1(px, b)).min().unwrap_or(u32::MAX);
        if min_d > threshold {
            mask.put(x, y, 255);
        }
    }
    Ok(mask)
}

/// Segment a frame into black-masked object crops.
///
/// ```
/// use taor_core::prelude::*;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
/// let scene = taor_data::render_room(&[taor_data::ObjectClass::Sofa], &mut rng);
/// let segments = segment_frame(&scene.image, &SegmentConfig::default());
/// assert!(!segments.is_empty());
/// ```
pub fn segment_frame(img: &RgbImage, cfg: &SegmentConfig) -> Vec<SegmentedObject> {
    match try_segment_frame(img, cfg) {
        Ok(segs) => segs,
        Err(e) => panic!("{e}"), // taor-lint: allow(panic::panic) — documented legacy wrapper: panicking on Err is this shim's contract; callers wanting Results use the try_* API
    }
}

/// Fallible [`segment_frame`]: an empty background colour model is an
/// [`Error::EmptyInput`] instead of one giant full-frame component.
pub fn try_segment_frame(img: &RgbImage, cfg: &SegmentConfig) -> Result<Vec<SegmentedObject>> {
    let mask = open(&try_foreground_mask(img, cfg)?, cfg.open_radius);
    let labels = label_components(&mask);
    Ok(labels
        .filtered(cfg.min_area)
        .into_iter()
        .map(|comp| {
            let bbox = comp.bbox;
            let mut crop = RgbImage::new(bbox.width, bbox.height);
            for dy in 0..bbox.height {
                for dx in 0..bbox.width {
                    let (x, y) = (bbox.x + dx, bbox.y + dy);
                    if labels.map.pixel(x, y)[0] == comp.label {
                        crop.put_pixel(dx, dy, img.pixel(x, y));
                    }
                }
            }
            SegmentedObject { bbox, crop, area: comp.area }
        })
        .collect())
}

/// A detection: segmented region plus predicted class.
#[derive(Debug, Clone)]
pub struct Detection {
    pub bbox: Rect,
    pub class: ObjectClass,
}

/// Run segmentation + classification over a frame. `classify` maps a
/// black-masked crop to a class (typically a closure over the hybrid
/// pipeline and a prepared reference set).
pub fn recognise_frame(
    img: &RgbImage,
    cfg: &SegmentConfig,
    classify: impl Fn(&RgbImage) -> ObjectClass + Sync,
) -> Vec<Detection> {
    match try_recognise_frame(img, cfg, classify) {
        Ok(dets) => dets,
        Err(e) => panic!("{e}"), // taor-lint: allow(panic::panic) — documented legacy wrapper: panicking on Err is this shim's contract; callers wanting Results use the try_* API
    }
}

/// Fallible [`recognise_frame`], propagating segmentation errors.
pub fn try_recognise_frame(
    img: &RgbImage,
    cfg: &SegmentConfig,
    classify: impl Fn(&RgbImage) -> ObjectClass + Sync,
) -> Result<Vec<Detection>> {
    Ok(try_segment_frame(img, cfg)?
        .into_par_iter()
        .map(|seg| Detection { bbox: seg.bbox, class: classify(&seg.crop) })
        .collect())
}

/// Intersection-over-union of two rectangles.
pub fn iou(a: &Rect, b: &Rect) -> f64 {
    match a.intersect(b) {
        Some(i) => {
            let inter = i.area() as f64;
            inter / (a.area() as f64 + b.area() as f64 - inter)
        }
        None => 0.0,
    }
}

/// End-to-end scene evaluation: greedy IoU matching of detections to
/// ground truth.
#[derive(Debug, Clone, Default, serde::Serialize)]
pub struct SceneEvaluation {
    /// Ground-truth objects across all frames.
    pub total_objects: usize,
    /// Objects matched by a detection with IoU ≥ 0.3.
    pub detected: usize,
    /// Detected objects whose predicted class is correct.
    pub correctly_classified: usize,
    /// Detections with no ground-truth match (false alarms).
    pub false_positives: usize,
}

impl SceneEvaluation {
    /// Fraction of objects found by the segmenter.
    pub fn detection_rate(&self) -> f64 {
        if self.total_objects == 0 {
            0.0
        } else {
            self.detected as f64 / self.total_objects as f64
        }
    }

    /// Classification accuracy *given* a correct detection.
    pub fn classification_rate(&self) -> f64 {
        if self.detected == 0 {
            0.0
        } else {
            self.correctly_classified as f64 / self.detected as f64
        }
    }

    /// End-to-end recall: correct class AND correct localisation.
    pub fn end_to_end_rate(&self) -> f64 {
        if self.total_objects == 0 {
            0.0
        } else {
            self.correctly_classified as f64 / self.total_objects as f64
        }
    }
}

/// Evaluate detections against a scene's ground truth (greedy best-IoU
/// matching, one detection per object).
pub fn evaluate_scene(scene: &RoomScene, detections: &[Detection]) -> SceneEvaluation {
    let mut eval = SceneEvaluation { total_objects: scene.objects.len(), ..Default::default() };
    let mut used = vec![false; detections.len()];
    for obj in &scene.objects {
        let mut best: Option<(usize, f64)> = None;
        for (i, det) in detections.iter().enumerate() {
            if used[i] {
                continue;
            }
            let v = iou(&obj.bbox, &det.bbox);
            if v >= 0.3 && best.is_none_or(|(_, bv)| v > bv) {
                best = Some((i, v));
            }
        }
        if let Some((i, _)) = best {
            used[i] = true;
            eval.detected += 1;
            if detections[i].class == obj.class {
                eval.correctly_classified += 1;
            }
        }
    }
    eval.false_positives = used.iter().filter(|&&u| !u).count();
    eval
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use taor_data::render_room;

    fn scene(seed: u64, classes: &[ObjectClass]) -> RoomScene {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        render_room(classes, &mut rng)
    }

    #[test]
    fn segmentation_finds_objects() {
        let s = scene(1, &[ObjectClass::Sofa, ObjectClass::Lamp, ObjectClass::Box]);
        let segs = segment_frame(&s.image, &SegmentConfig::default());
        assert!((2..=6).contains(&segs.len()), "expected ~3 segments, got {}", segs.len());
        // Each segment overlaps some ground-truth object.
        for seg in &segs {
            let hit = s.objects.iter().any(|o| iou(&o.bbox, &seg.bbox) > 0.1);
            assert!(hit, "segment {:?} matches no object", seg.bbox);
        }
    }

    #[test]
    fn crops_are_black_masked() {
        let s = scene(2, &[ObjectClass::Chair, ObjectClass::Bottle]);
        let segs = segment_frame(&s.image, &SegmentConfig::default());
        for seg in &segs {
            // Crops contain both object pixels and the black mask.
            let black = seg.crop.as_raw().chunks_exact(3).filter(|px| *px == [0, 0, 0]).count();
            let total = (seg.crop.width() * seg.crop.height()) as usize;
            assert!(black < total, "crop entirely black");
        }
    }

    #[test]
    fn iou_identities() {
        let a = Rect::new(0, 0, 10, 10);
        assert_eq!(iou(&a, &a), 1.0);
        assert_eq!(iou(&a, &Rect::new(20, 20, 5, 5)), 0.0);
        let half = iou(&a, &Rect::new(0, 0, 10, 5));
        assert!((half - 0.5).abs() < 1e-12);
    }

    #[test]
    fn evaluate_scene_counts() {
        let s = scene(3, &[ObjectClass::Table, ObjectClass::Door]);
        // Perfect detections from ground truth.
        let dets: Vec<Detection> =
            s.objects.iter().map(|o| Detection { bbox: o.bbox, class: o.class }).collect();
        let eval = evaluate_scene(&s, &dets);
        assert_eq!(eval.detected, 2);
        assert_eq!(eval.correctly_classified, 2);
        assert_eq!(eval.false_positives, 0);
        assert_eq!(eval.end_to_end_rate(), 1.0);
    }

    #[test]
    fn evaluate_scene_wrong_class_counts_detection_only() {
        let s = scene(4, &[ObjectClass::Window]);
        let dets = vec![Detection { bbox: s.objects[0].bbox, class: ObjectClass::Door }];
        let eval = evaluate_scene(&s, &dets);
        assert_eq!(eval.detected, 1);
        assert_eq!(eval.correctly_classified, 0);
        assert_eq!(eval.classification_rate(), 0.0);
    }

    #[test]
    fn empty_detections_all_missed() {
        let s = scene(5, &[ObjectClass::Lamp, ObjectClass::Paper]);
        let eval = evaluate_scene(&s, &[]);
        assert_eq!(eval.detected, 0);
        assert_eq!(eval.detection_rate(), 0.0);
    }

    #[test]
    fn empty_background_model_is_an_error_not_full_frame_foreground() {
        let s = scene(7, &[ObjectClass::Chair]);
        // Explicit empty model: must refuse, not mark every pixel.
        assert!(matches!(
            mask_against(&s.image, &[], 40),
            Err(crate::error::Error::EmptyInput("background color model"))
        ));
        // Zero modelled colours propagates the same error end to end.
        let cfg = SegmentConfig { background_colors: 0, ..Default::default() };
        assert!(try_foreground_mask(&s.image, &cfg).is_err());
        assert!(try_segment_frame(&s.image, &cfg).is_err());
        assert!(try_recognise_frame(&s.image, &cfg, |_| ObjectClass::Chair).is_err());
    }

    #[test]
    fn nonempty_model_still_masks() {
        let s = scene(8, &[ObjectClass::Lamp]);
        let bg = border_colors(&s.image, 3);
        let mask = mask_against(&s.image, &bg, 40).unwrap();
        let lit = mask.as_raw().iter().filter(|&&v| v > 0).count();
        let total = mask.as_raw().len();
        assert!(lit > 0, "no foreground found");
        assert!(lit < total, "whole frame marked foreground");
    }

    #[test]
    fn recognise_frame_plumbs_the_classifier() {
        let s = scene(6, &[ObjectClass::Sofa]);
        let dets = recognise_frame(&s.image, &SegmentConfig::default(), |_| ObjectClass::Sofa);
        assert!(!dets.is_empty());
        assert!(dets.iter().all(|d| d.class == ObjectClass::Sofa));
    }
}
