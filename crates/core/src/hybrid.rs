//! Pipeline (iii): hybrid shape + colour matching (paper §3.2).
//!
//! "Let S and C be the scores obtained with shape-only and colour-only
//! matching … with α and β being their relative weights. Then, the
//! weighted sum of scores is defined as θ = αS + βC" — with the inverse
//! of C taken for similarity-trending metrics, and the selected model
//! minimising θ under three aggregation strategies:
//!
//! * **ΘT (weighted sum)** — argmin over every individual view θt,
//! * **ΘZ (micro-average)** — θ averaged per *model* first,
//! * **ΘC (macro-average)** — θ averaged per *class* first.
//!
//! The paper reports the Hu-L3 + Hellinger configuration at α = 0.3,
//! β = 0.7 as its most consistent hybrid; those are the defaults here.

use crate::color_only::ColorScorer;
use crate::diag::Diagnostics;
use crate::error::{Error, Result};
use crate::pipeline::{MatchScorer, RefView};
use crate::shape_only::ShapeScorer;
use rayon::prelude::*;
use taor_data::ObjectClass;
use taor_imgproc::cmp::nan_last_f64;
use taor_imgproc::histogram::HistCompare;
use taor_imgproc::moments::MatchShapesMode;

/// Aggregation strategy for the hybrid argmin.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Aggregation {
    /// ΘT: argmin over all individual views.
    WeightedSum,
    /// ΘZ: average θ per model, argmin over models.
    MicroAverage,
    /// ΘC: average θ per class, argmin over classes.
    MacroAverage,
}

impl Aggregation {
    /// The three strategies in the paper's table order.
    pub const ALL: [Aggregation; 3] =
        [Aggregation::WeightedSum, Aggregation::MicroAverage, Aggregation::MacroAverage];

    /// Row label used in Tables 2, 7 and 8.
    pub fn label(&self) -> &'static str {
        match self {
            Aggregation::WeightedSum => "Shape+Color (weighted sum)",
            Aggregation::MicroAverage => "Shape+Color (micro-avg)",
            Aggregation::MacroAverage => "Shape+Color (macro-avg)",
        }
    }
}

/// Hybrid pipeline configuration.
#[derive(Debug, Clone, Copy)]
pub struct HybridConfig {
    pub shape: ShapeScorer,
    pub color: ColorScorer,
    pub alpha: f64,
    pub beta: f64,
}

impl Default for HybridConfig {
    fn default() -> Self {
        // The configuration the paper reports: Hu L3 + Hellinger,
        // α = 0.3, β = 0.7.
        HybridConfig {
            shape: ShapeScorer { mode: MatchShapesMode::I3 },
            color: ColorScorer { metric: HistCompare::Hellinger },
            alpha: 0.3,
            beta: 0.7,
        }
    }
}

impl HybridConfig {
    /// θ for one (query, view) pair.
    fn theta(
        &self,
        q: &crate::preprocess::Preprocessed,
        v: &crate::preprocess::Preprocessed,
    ) -> f64 {
        self.alpha * self.shape.score(q, v) + self.beta * self.color.score(q, v)
    }
}

/// Classify queries with the hybrid pipeline under one aggregation rule.
///
/// Legacy wrapper over [`try_classify_hybrid`]: panics on an empty
/// reference set and discards diagnostics.
pub fn classify_hybrid(
    queries: &[RefView],
    views: &[RefView],
    cfg: &HybridConfig,
    agg: Aggregation,
) -> Vec<ObjectClass> {
    let diag = Diagnostics::new();
    match try_classify_hybrid(queries, views, cfg, agg, &diag) {
        Ok(preds) => preds,
        Err(e) => panic!("{e}"), // taor-lint: allow(panic::panic) — documented legacy wrapper: panicking on Err is this shim's contract; callers wanting Results use the try_* API
    }
}

/// Fallible [`classify_hybrid`]: an empty reference set is an
/// [`Error::EmptyReference`]; NaN θ scores are quarantined (counted in
/// `diag`, never winning the argmin under any aggregation); a query for
/// which no group produced a finite mean falls back to the first
/// reference view's class and is counted as degraded.
pub fn try_classify_hybrid(
    queries: &[RefView],
    views: &[RefView],
    cfg: &HybridConfig,
    agg: Aggregation,
    diag: &Diagnostics,
) -> Result<Vec<ObjectClass>> {
    if views.is_empty() {
        return Err(Error::EmptyReference("reference set is empty"));
    }
    Ok(queries
        .par_iter()
        .map(|q| {
            let thetas: Vec<f64> = views.iter().map(|v| cfg.theta(&q.feat, &v.feat)).collect();
            diag.record_nan_scores(thetas.iter().filter(|t| t.is_nan()).count() as u64);
            let (best, best_class) = match agg {
                Aggregation::WeightedSum => {
                    let (mut best, mut best_class) = (f64::INFINITY, views[0].class);
                    for (v, &t) in views.iter().zip(&thetas) {
                        if t < best {
                            best = t;
                            best_class = v.class;
                        }
                    }
                    (best, best_class)
                }
                Aggregation::MicroAverage => {
                    // Average per (class, model) group.
                    argmin_grouped(views, &thetas, |v| (v.class.index(), v.model_id))
                }
                Aggregation::MacroAverage => {
                    argmin_grouped(views, &thetas, |v| (v.class.index(), 0))
                }
            };
            if !best.is_finite() {
                diag.record_degraded(1);
            }
            best_class
        })
        .collect())
}

/// Argmin over group means; groups are keyed by `key(view)` and resolve
/// to `(mean, class)` of the winning group. A NaN group mean never wins
/// unless every mean is NaN; `views` must be non-empty (the caller
/// checks), and the all-NaN case still resolves deterministically to the
/// first group in key order.
fn argmin_grouped(
    views: &[RefView],
    thetas: &[f64],
    key: impl Fn(&RefView) -> (usize, usize),
) -> (f64, ObjectClass) {
    use std::collections::BTreeMap;
    let mut sums: BTreeMap<(usize, usize), (f64, usize, ObjectClass)> = BTreeMap::new();
    for (v, &t) in views.iter().zip(thetas) {
        let e = sums.entry(key(v)).or_insert((0.0, 0, v.class));
        e.0 += t;
        e.1 += 1;
    }
    // BTreeMap iterates in key order, so min_by ties (and the all-NaN
    // fallback) resolve to the first group in key order on every run.
    sums.into_iter()
        .map(|(_, (sum, n, class))| (sum / n as f64, class))
        .min_by(|a, b| nan_last_f64(a.0, b.0))
        .unwrap_or((f64::INFINITY, views[0].class))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{prepare_views, truth_of};
    use crate::preprocess::Background;
    use taor_data::{shapenet_set1, shapenet_set2};

    #[test]
    fn labels_match_table2() {
        let labels: Vec<_> = Aggregation::ALL.iter().map(|a| a.label()).collect();
        assert_eq!(
            labels,
            ["Shape+Color (weighted sum)", "Shape+Color (micro-avg)", "Shape+Color (macro-avg)"]
        );
    }

    #[test]
    fn self_classification_weighted_sum_perfect() {
        let views = prepare_views(&shapenet_set1(1), Background::White);
        let preds =
            classify_hybrid(&views, &views, &HybridConfig::default(), Aggregation::WeightedSum);
        assert_eq!(preds, truth_of(&views));
    }

    #[test]
    fn all_aggregations_produce_predictions() {
        let q = prepare_views(&shapenet_set2(2), Background::White);
        let r = prepare_views(&shapenet_set1(2), Background::White);
        for agg in Aggregation::ALL {
            let preds = classify_hybrid(&q, &r, &HybridConfig::default(), agg);
            assert_eq!(preds.len(), q.len());
        }
    }

    #[test]
    fn aggregations_differ_in_general() {
        let q = prepare_views(&shapenet_set2(3), Background::White);
        let r = prepare_views(&shapenet_set1(3), Background::White);
        let cfg = HybridConfig::default();
        let a = classify_hybrid(&q, &r, &cfg, Aggregation::WeightedSum);
        let b = classify_hybrid(&q, &r, &cfg, Aggregation::MacroAverage);
        assert!(a.iter().zip(&b).any(|(x, y)| x != y), "ΘT and ΘC should disagree on some queries");
    }

    #[test]
    fn zero_alpha_reduces_to_color_only() {
        let q = prepare_views(&shapenet_set2(4), Background::White);
        let r = prepare_views(&shapenet_set1(4), Background::White);
        let cfg = HybridConfig { alpha: 0.0, beta: 1.0, ..Default::default() };
        let hybrid = classify_hybrid(&q, &r, &cfg, Aggregation::WeightedSum);
        let color = crate::pipeline::classify_per_view(&q, &r, &cfg.color);
        assert_eq!(hybrid, color);
    }
}
