// taor-lint: allow(panic::index) — dense numeric kernel: indices are derived from dimensions validated at the public boundary and bounded by the enclosing loops.
//! Evaluation metrics matching the paper's tables.
//!
//! Two conventions are needed:
//!
//! * **Multi-class tables (2, 5–9).** Per class the paper reports
//!   "Accuracy" (= within-class recall), "Precision", "Recall" and "F1".
//!   Reverse-engineering the numbers shows the paper's *Precision* is
//!   `TP_c / N_total` — the true positives of the class over the size of
//!   the whole evaluation set, not over the class's predicted-positive
//!   count (e.g. Table 5 baseline, Chair: recall 0.156, precision
//!   0.0225 = 0.156 · 1000 / 6934). [`ClassMetrics`] carries both that
//!   paper-convention precision and the standard one.
//! * **Binary pair table (4).** Standard per-class precision/recall/F1
//!   with support counts.

use serde::Serialize;
use taor_data::ObjectClass;

/// Per-class metrics for the multi-class pipelines.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ClassMetrics {
    /// Within-class accuracy (identical to recall; the paper lists both).
    pub accuracy: f64,
    /// The paper's precision convention: `TP / N_total`.
    pub precision_paper: f64,
    /// Standard precision: `TP / predicted-positive`.
    pub precision_std: f64,
    pub recall: f64,
    /// F1 computed from the paper's precision (to match its tables).
    pub f1: f64,
    /// Number of ground-truth samples of this class.
    pub support: usize,
}

/// Full evaluation of a multi-class prediction run.
#[derive(Debug, Clone, Serialize)]
pub struct Evaluation {
    /// Cross-class cumulative accuracy (the paper's headline number).
    pub cumulative_accuracy: f64,
    /// Per-class metrics in Table 1 class order.
    pub per_class: Vec<ClassMetrics>,
    /// Confusion matrix: `confusion[truth][pred]`.
    pub confusion: Vec<Vec<usize>>,
}

/// Evaluate predictions against ground truth (both as class indices).
///
/// # Panics
/// Panics if the slices disagree in length or contain out-of-range
/// indices — those are harness bugs, not data conditions.
pub fn evaluate(truth: &[ObjectClass], predictions: &[ObjectClass]) -> Evaluation {
    assert_eq!(truth.len(), predictions.len(), "truth/prediction length mismatch");
    assert!(!truth.is_empty(), "cannot evaluate an empty prediction set");
    let k = ObjectClass::COUNT;
    let n = truth.len() as f64;
    let mut confusion = vec![vec![0usize; k]; k];
    for (t, p) in truth.iter().zip(predictions) {
        confusion[t.index()][p.index()] += 1;
    }
    let mut per_class = Vec::with_capacity(k);
    let mut correct_total = 0usize;
    for (c, row) in confusion.iter().enumerate() {
        let tp = row[c];
        correct_total += tp;
        let support: usize = row.iter().sum();
        let predicted: usize = confusion.iter().map(|r| r[c]).sum();
        let recall = if support > 0 { tp as f64 / support as f64 } else { 0.0 };
        let precision_paper = tp as f64 / n;
        let precision_std = if predicted > 0 { tp as f64 / predicted as f64 } else { 0.0 };
        let f1 = if precision_paper + recall > 0.0 {
            2.0 * precision_paper * recall / (precision_paper + recall)
        } else {
            0.0
        };
        per_class.push(ClassMetrics {
            accuracy: recall,
            precision_paper,
            precision_std,
            recall,
            f1,
            support,
        });
    }
    Evaluation { cumulative_accuracy: correct_total as f64 / n, per_class, confusion }
}

/// Randomised label assignment — the paper's reference baseline for every
/// experiment. Deterministic per seed.
pub fn random_baseline(truth: &[ObjectClass], seed: u64) -> Vec<ObjectClass> {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
    truth
        .iter()
        .map(|_| ObjectClass::from_index(rng.gen_range(0..ObjectClass::COUNT)).expect("in range")) // taor-lint: allow(panic::expect) — invariant expect: the message states why this cannot fail on valid state
        .collect()
}

/// Binary-classification metrics for one class of the pair task.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct BinaryClassMetrics {
    pub precision: f64,
    pub recall: f64,
    pub f1: f64,
    pub support: usize,
}

/// Table-4-style report: metrics for "Similar" (label 1) and "Dissimilar"
/// (label 0).
#[derive(Debug, Clone, Serialize)]
pub struct BinaryEvaluation {
    pub similar: BinaryClassMetrics,
    pub dissimilar: BinaryClassMetrics,
    pub accuracy: f64,
}

/// Evaluate a binary (similar/dissimilar) prediction run with standard
/// metrics, as used by the paper's Table 4.
pub fn evaluate_binary(truth: &[usize], predictions: &[usize]) -> BinaryEvaluation {
    assert_eq!(truth.len(), predictions.len(), "truth/prediction length mismatch");
    assert!(!truth.is_empty(), "cannot evaluate an empty prediction set");
    let metric_for = |positive: usize| {
        let tp =
            truth.iter().zip(predictions).filter(|(&t, &p)| t == positive && p == positive).count();
        let pred_pos = predictions.iter().filter(|&&p| p == positive).count();
        let support = truth.iter().filter(|&&t| t == positive).count();
        let precision = if pred_pos > 0 { tp as f64 / pred_pos as f64 } else { 0.0 };
        let recall = if support > 0 { tp as f64 / support as f64 } else { 0.0 };
        let f1 = if precision + recall > 0.0 {
            2.0 * precision * recall / (precision + recall)
        } else {
            0.0
        };
        BinaryClassMetrics { precision, recall, f1, support }
    };
    let correct = truth.iter().zip(predictions).filter(|(t, p)| t == p).count();
    BinaryEvaluation {
        similar: metric_for(1),
        dissimilar: metric_for(0),
        accuracy: correct as f64 / truth.len() as f64,
    }
}

/// Area under the ROC curve for binary scores (`score` = confidence that
/// the label is 1). Computed via the rank-sum (Mann–Whitney U) identity,
/// with proper tie handling. Returns 0.5 when either class is absent.
pub fn roc_auc(truth: &[usize], scores: &[f32]) -> f64 {
    assert_eq!(truth.len(), scores.len(), "truth/score length mismatch");
    let n_pos = truth.iter().filter(|&&t| t == 1).count();
    let n_neg = truth.len() - n_pos;
    if n_pos == 0 || n_neg == 0 {
        return 0.5;
    }
    // Rank the scores (average ranks for ties).
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| taor_imgproc::cmp::nan_last_f32(scores[a], scores[b]));
    let mut ranks = vec![0.0f64; scores.len()];
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && scores[order[j + 1]] == scores[order[i]] {
            j += 1;
        }
        let avg_rank = (i + j) as f64 / 2.0 + 1.0;
        for &k in &order[i..=j] {
            ranks[k] = avg_rank;
        }
        i = j + 1;
    }
    let rank_sum_pos: f64 =
        truth.iter().zip(&ranks).filter(|(&t, _)| t == 1).map(|(_, &r)| r).sum();
    let u = rank_sum_pos - (n_pos * (n_pos + 1)) as f64 / 2.0;
    u / (n_pos as f64 * n_neg as f64)
}

/// Top-k accuracy for multi-class rankings: `rankings[i]` lists classes
/// from most to least likely for sample `i`.
pub fn top_k_accuracy(truth: &[ObjectClass], rankings: &[Vec<ObjectClass>], k: usize) -> f64 {
    assert_eq!(truth.len(), rankings.len(), "truth/ranking length mismatch");
    assert!(k >= 1, "k must be >= 1");
    let hits =
        truth.iter().zip(rankings).filter(|(t, r)| r.iter().take(k).any(|c| c == *t)).count();
    hits as f64 / truth.len().max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn classes(idx: &[usize]) -> Vec<ObjectClass> {
        idx.iter().map(|&i| ObjectClass::from_index(i).unwrap()).collect()
    }

    #[test]
    fn perfect_predictions() {
        let truth = classes(&[0, 1, 2, 3]);
        let eval = evaluate(&truth, &truth);
        assert_eq!(eval.cumulative_accuracy, 1.0);
        assert_eq!(eval.per_class[0].recall, 1.0);
        assert_eq!(eval.per_class[0].precision_std, 1.0);
        // Paper precision divides by the whole set.
        assert_eq!(eval.per_class[0].precision_paper, 0.25);
    }

    #[test]
    fn paper_precision_convention_reproduces_baseline_numbers() {
        // Table 5 baseline, Chair: recall 0.156 on support 1000 of 6934
        // gives paper-precision 0.0225 and F1 0.0393.
        let tp = 156;
        let support = 1000;
        let total = 6934;
        let mut truth = Vec::new();
        let mut pred = Vec::new();
        // `tp` chairs predicted chair, rest of chairs predicted bottle.
        for i in 0..support {
            truth.push(ObjectClass::Chair);
            pred.push(if i < tp { ObjectClass::Chair } else { ObjectClass::Bottle });
        }
        // Fill the remaining samples with non-chair truth predicted paper.
        for _ in support..total {
            truth.push(ObjectClass::Table);
            pred.push(ObjectClass::Paper);
        }
        let eval = evaluate(&truth, &pred);
        let chair = eval.per_class[ObjectClass::Chair.index()];
        assert!((chair.recall - 0.156).abs() < 1e-9);
        assert!((chair.precision_paper - 0.0225).abs() < 2e-4, "{}", chair.precision_paper);
        assert!((chair.f1 - 0.0393).abs() < 5e-4, "{}", chair.f1);
    }

    #[test]
    fn confusion_matrix_rows_sum_to_support() {
        let truth = classes(&[0, 0, 1, 2, 2, 2]);
        let pred = classes(&[0, 1, 1, 2, 0, 2]);
        let eval = evaluate(&truth, &pred);
        assert_eq!(eval.confusion[0][0], 1);
        assert_eq!(eval.confusion[0][1], 1);
        assert_eq!(eval.per_class[2].support, 3);
        assert!((eval.cumulative_accuracy - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn empty_class_has_zero_metrics_without_nan() {
        let truth = classes(&[0, 0]);
        let pred = classes(&[1, 1]);
        let eval = evaluate(&truth, &pred);
        let m = eval.per_class[3];
        assert_eq!(m.recall, 0.0);
        assert_eq!(m.precision_std, 0.0);
        assert_eq!(m.f1, 0.0);
        assert!(m.f1.is_finite());
    }

    #[test]
    fn random_baseline_near_ten_percent() {
        let truth: Vec<ObjectClass> =
            (0..5000).map(|i| ObjectClass::from_index(i % 10).unwrap()).collect();
        let pred = random_baseline(&truth, 2019);
        let eval = evaluate(&truth, &pred);
        assert!(
            (eval.cumulative_accuracy - 0.1).abs() < 0.02,
            "baseline accuracy {}",
            eval.cumulative_accuracy
        );
        // Deterministic per seed.
        assert_eq!(pred, random_baseline(&truth, 2019));
        assert_ne!(pred, random_baseline(&truth, 2020));
    }

    #[test]
    fn binary_all_positive_collapse() {
        // The Normalized-X-Corr failure mode: everything predicted similar.
        let truth: Vec<usize> = (0..1000).map(|i| usize::from(i < 90)).collect(); // 90 similar
        let pred = vec![1usize; 1000];
        let eval = evaluate_binary(&truth, &pred);
        assert!((eval.similar.precision - 0.09).abs() < 1e-12);
        assert_eq!(eval.similar.recall, 1.0);
        assert_eq!(eval.dissimilar.precision, 0.0);
        assert_eq!(eval.dissimilar.recall, 0.0);
        assert_eq!(eval.dissimilar.f1, 0.0);
        assert_eq!(eval.similar.support, 90);
        assert_eq!(eval.dissimilar.support, 910);
    }

    #[test]
    fn binary_perfect() {
        let truth = vec![0, 1, 0, 1];
        let eval = evaluate_binary(&truth, &truth);
        assert_eq!(eval.accuracy, 1.0);
        assert_eq!(eval.similar.f1, 1.0);
        assert_eq!(eval.dissimilar.f1, 1.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let truth = classes(&[0]);
        let pred = classes(&[0, 1]);
        evaluate(&truth, &pred);
    }

    #[test]
    fn auc_perfect_and_inverted() {
        let truth = [0, 0, 1, 1];
        assert_eq!(roc_auc(&truth, &[0.1, 0.2, 0.8, 0.9]), 1.0);
        assert_eq!(roc_auc(&truth, &[0.9, 0.8, 0.2, 0.1]), 0.0);
    }

    #[test]
    fn auc_random_scores_near_half() {
        let truth: Vec<usize> = (0..2000).map(|i| i % 2).collect();
        let scores: Vec<f32> =
            (0..2000).map(|i| ((i * 2654435761u64 as usize) % 997) as f32).collect();
        let auc = roc_auc(&truth, &scores);
        assert!((auc - 0.5).abs() < 0.05, "auc {auc}");
    }

    #[test]
    fn auc_handles_ties_and_degenerate_classes() {
        let truth = [0, 1, 0, 1];
        // All-equal scores: AUC is exactly 0.5 under average ranks.
        assert_eq!(roc_auc(&truth, &[0.5; 4]), 0.5);
        // Single-class truth: defined as 0.5.
        assert_eq!(roc_auc(&[1, 1], &[0.2, 0.9]), 0.5);
    }

    #[test]
    fn top_k_monotone_in_k() {
        let truth = classes(&[0, 1, 2]);
        let rankings = vec![
            classes(&[3, 0, 1]), // truth at rank 2
            classes(&[1, 2, 3]), // truth at rank 1
            classes(&[4, 5, 2]), // truth at rank 3
        ];
        assert!((top_k_accuracy(&truth, &rankings, 1) - 1.0 / 3.0).abs() < 1e-12);
        assert!((top_k_accuracy(&truth, &rankings, 2) - 2.0 / 3.0).abs() < 1e-12);
        assert!((top_k_accuracy(&truth, &rankings, 3) - 1.0).abs() < 1e-12);
    }
}
