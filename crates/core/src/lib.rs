//! # taor-core
//!
//! The five object-recognition pipelines of Chiatti et al., *Exploring
//! Task-agnostic, ShapeNet-based Object Recognition for Mobile Robots*
//! (Workshops of the EDBT/ICDT 2019 Joint Conference), plus the
//! evaluation and reporting machinery that regenerates the paper's nine
//! tables.
//!
//! | Pipeline | Module | Paper section |
//! |---|---|---|
//! | (i) shape-only (Hu moments, L1/L2/L3) | [`shape_only`] | §3.2 |
//! | (ii) colour-only (4 histogram metrics) | [`color_only`] | §3.2 |
//! | (iii) hybrid αS + βC (3 aggregations) | [`hybrid`] | §3.2 |
//! | (iv) SIFT / SURF / ORB descriptors | [`descriptors`] | §3.3 |
//! | (v) Normalized-X-Corr Siamese net | [`siamese`] | §3.4 |
//!
//! All pipelines share the 4-step preprocessing of [`preprocess`] and the
//! metric conventions of [`eval`] (including the paper's idiosyncratic
//! per-class precision, `TP/N_total`, reverse-engineered from its
//! baseline rows).
//!
//! ## Quickstart
//!
//! ```
//! use taor_core::prelude::*;
//! use taor_data::{shapenet_set1, shapenet_set2};
//!
//! // Match SNS2 views against SNS1 with the paper's best hybrid config.
//! let refs = prepare_views(&shapenet_set1(2019), Background::White);
//! let queries = prepare_views(&shapenet_set2(2019), Background::White);
//! let preds = classify_hybrid(
//!     &queries, &refs, &HybridConfig::default(), Aggregation::WeightedSum,
//! );
//! let eval = evaluate(&truth_of(&queries), &preds);
//! assert!(eval.cumulative_accuracy > 0.1); // beats the random baseline
//! ```

#![forbid(unsafe_code)]

pub mod color_only;
pub mod descriptors;
pub mod diag;
pub mod error;
pub mod eval;
pub mod fault;
pub mod hybrid;
pub mod pipeline;
pub mod preprocess;
pub mod recognizer;
pub mod report;
pub mod segment;
pub mod shape_only;
pub mod siamese;
pub mod wire;

/// Glob-import of the common pipeline API.
pub mod prelude {
    pub use crate::color_only::ColorScorer;
    pub use crate::descriptors::{
        classify_descriptors, classify_descriptors_verified, extract_index, index_truth,
        try_classify_descriptors, try_classify_descriptors_verified, try_classify_descriptors_with,
        AnnIndexMode, DescriptorIndex, DescriptorKind,
    };
    pub use crate::diag::{Diagnostics, DiagnosticsReport};
    pub use crate::eval::{
        evaluate, evaluate_binary, random_baseline, BinaryEvaluation, ClassMetrics, Evaluation,
    };
    pub use crate::fault::{
        adversarial_corpus, run_fault_injection, run_service_fault_injection, service_corpus,
        AdversarialCase, FaultReport, NanScorer, PipelineOutcome, ServiceCase, ServiceExpect,
    };
    pub use crate::hybrid::{classify_hybrid, try_classify_hybrid, Aggregation, HybridConfig};
    pub use crate::pipeline::{
        classify_per_view, classify_per_view_ranked, prepare_views, truth_of,
        try_classify_per_view, try_classify_per_view_ranked, MatchScorer, RefView,
    };
    pub use crate::preprocess::{binarise, preprocess, Background, Preprocessed, HIST_BINS};
    pub use crate::recognizer::{Method, Recognition, Recognizer};
    pub use crate::report::{
        classwise_headers, classwise_rows, fmt_f, ExperimentRecord, TextTable,
    };
    pub use crate::segment::{
        border_colors, evaluate_scene, foreground_mask, iou, mask_against, recognise_frame,
        segment_frame, try_foreground_mask, try_recognise_frame, try_segment_frame, Detection,
        SceneEvaluation, SegmentConfig, SegmentedObject,
    };
    pub use crate::shape_only::ShapeScorer;
    pub use crate::siamese::{
        evaluate_siamese, image_to_tensor, pairs_to_samples, train_siamese, try_train_siamese,
        CosineSiamese, SiameseConfig,
    };
    pub use crate::wire::{
        decode_crop, encode_f32, encode_rgb8, DecodeStats, PixelFormat, WireError, MAX_WIRE_DIM,
        WIRE_HEADER_LEN, WIRE_MAGIC, WIRE_VERSION,
    };
}

pub use prelude::*;

// The error taxonomy is re-exported at the root only (not via the
// prelude) so glob-importers keep the std `Result`.
pub use crate::error::{Error, Result};
