//! Pipeline (ii): colour-only matching (paper §3.2).
//!
//! "comparing the RGB histograms of the input image pairs … we relied on
//! the OpenCV library and tested different comparison metrics, namely
//! Correlation, Chi-square, Intersection and Hellinger distance."
//!
//! Correlation and Intersection are similarities; to expose a uniform
//! lower-is-better interface (and to feed the hybrid combination, where
//! "the inverse of C was taken in those cases were histogram comparison
//! returned a similarity function with opposite trend"), the scorer
//! inverts them: `1 / max(C, ε)`.

use crate::pipeline::MatchScorer;
use crate::preprocess::Preprocessed;
use taor_imgproc::histogram::{compare_hist, compare_hist_bounded, HistCompare};

/// Floor for inverted similarity scores, so zero or negative correlation
/// maps to a very large (but finite) distance.
const SIM_FLOOR: f64 = 1e-6;

/// Histogram-comparison scorer.
#[derive(Debug, Clone, Copy)]
pub struct ColorScorer {
    pub metric: HistCompare,
}

impl ColorScorer {
    /// The four metrics in paper order.
    pub const ALL: [ColorScorer; 4] = [
        ColorScorer { metric: HistCompare::Correlation },
        ColorScorer { metric: HistCompare::ChiSquare },
        ColorScorer { metric: HistCompare::Intersection },
        ColorScorer { metric: HistCompare::Hellinger },
    ];

    /// Table 2 row label.
    pub fn label(&self) -> String {
        format!("Color only {}", self.metric.name())
    }
}

impl MatchScorer for ColorScorer {
    fn score(&self, query: &Preprocessed, view: &Preprocessed) -> f64 {
        let c = compare_hist(&query.hist, &view.hist, self.metric)
            .expect("preprocessing uses one bin layout"); // taor-lint: allow(panic::expect) — invariant expect: the message states why this cannot fail on valid state
        if self.metric.higher_is_more_similar() {
            1.0 / c.max(SIM_FLOOR)
        } else {
            c
        }
    }

    fn score_bounded(&self, query: &Preprocessed, view: &Preprocessed, bound: f64) -> f64 {
        // Only the directly-accumulating metrics can abandon early;
        // `compare_hist_bounded` falls back to the full distance for the
        // rest. Inverted similarities can never prune (the distance is a
        // decreasing function of the accumulated similarity), so they
        // take the plain path.
        if self.metric.higher_is_more_similar() {
            self.score(query, view)
        } else {
            compare_hist_bounded(&query.hist, &view.hist, self.metric, bound)
                .expect("preprocessing uses one bin layout") // taor-lint: allow(panic::expect) — invariant expect: the message states why this cannot fail on valid state
        }
    }

    fn name(&self) -> String {
        self.label()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{classify_per_view, prepare_views, truth_of};
    use crate::preprocess::Background;
    use taor_data::shapenet_set1;

    #[test]
    fn labels_match_table2() {
        let labels: Vec<_> = ColorScorer::ALL.iter().map(|s| s.label()).collect();
        assert_eq!(
            labels,
            [
                "Color only Correlation",
                "Color only Chi-square",
                "Color only Intersection",
                "Color only Hellinger"
            ]
        );
    }

    #[test]
    fn all_metrics_give_lower_is_better() {
        let views = prepare_views(&shapenet_set1(1), Background::White);
        for scorer in ColorScorer::ALL {
            let self_score = scorer.score(&views[0].feat, &views[0].feat);
            let cross_score = scorer.score(&views[0].feat, &views[40].feat);
            assert!(
                self_score <= cross_score,
                "{}: self {self_score} vs cross {cross_score}",
                scorer.name()
            );
        }
    }

    #[test]
    fn self_classification_is_high() {
        let views = prepare_views(&shapenet_set1(2), Background::White);
        let truth = truth_of(&views);
        for scorer in ColorScorer::ALL {
            let preds = classify_per_view(&views, &views, &scorer);
            let correct = preds.iter().zip(&truth).filter(|(p, t)| p == t).count();
            assert!(correct as f64 / truth.len() as f64 > 0.9, "{}: {correct}/82", scorer.name());
        }
    }

    #[test]
    fn negative_correlation_maps_to_huge_distance() {
        let views = prepare_views(&shapenet_set1(3), Background::White);
        let scorer = ColorScorer { metric: HistCompare::Correlation };
        // Any score must be finite and positive under the inversion rule.
        for v in views.iter().take(10) {
            let s = scorer.score(&views[0].feat, &v.feat);
            assert!(s.is_finite() && s > 0.0);
        }
    }
}
