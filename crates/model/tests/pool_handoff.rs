//! Exhaustive model check of the pool's chunk hand-off protocol
//! (`proto::on_model::ChunkLatch`, the atomic core of
//! `vendor/rayon`'s `Task`).
//!
//! The model mirrors `run_chunked`: worker threads and the calling
//! thread race `claim()` over a tiny index space, write a recognisable
//! value into each claimed cell with a `Relaxed` store (standing in for
//! the region's plain data writes), report `complete()`, and the final
//! completer latches a done flag under a mutex. The caller then asserts
//! the invariants from `taor_model::invariants` — the same predicates
//! the width-8 stress suite samples at realistic sizes.

use std::sync::Arc;
use taor_model::check::sync::{spawn, AtomicUsize, Condvar, Mutex, Ordering};
use taor_model::check::{explore, Options};
use taor_model::invariants::{assert_exactly_once, assert_published};
use taor_model::proto::on_model::ChunkLatch;

const LEN: usize = 3;

/// Everything one drain participant shares with the others.
struct Region {
    latch: ChunkLatch,
    cells: Vec<AtomicUsize>,
    done: Mutex<bool>,
    done_cv: Condvar,
    /// Bookkeeping only (which ranges were claimed); a plain std mutex,
    /// invisible to the scheduler.
    claims: std::sync::Mutex<Vec<(usize, usize)>>,
}

impl Region {
    fn new(len: usize) -> Self {
        Region {
            latch: ChunkLatch::new(len, 1),
            cells: (0..len).map(|_| AtomicUsize::new(0)).collect(),
            done: Mutex::new(false),
            done_cv: Condvar::new(),
            claims: std::sync::Mutex::new(Vec::new()),
        }
    }

    /// The worker body: exactly `Task::drain` minus the panic plumbing.
    fn drain(&self) {
        while let Some((start, end)) = self.latch.claim() {
            for i in start..end {
                self.cells[i].store(i + 10, Ordering::Relaxed);
            }
            self.claims.lock().unwrap().push((start, end));
            if self.latch.complete(end - start) {
                *self.done.lock().unwrap() = true;
                self.done_cv.notify_all();
            }
        }
    }

    /// The caller's latch wait from `run_chunked`.
    fn wait_done(&self) {
        let mut g = self.done.lock().unwrap();
        while !*g {
            g = self.done_cv.wait(g).unwrap();
        }
    }
}

#[test]
fn chunk_delivery_is_exactly_once_and_writes_are_published() {
    let report = explore(Options::default(), || {
        let region = Arc::new(Region::new(LEN));
        let worker = {
            let region = Arc::clone(&region);
            spawn(move || region.drain())
        };
        // The caller participates, then waits on the latch — exactly
        // the run_chunked structure.
        region.drain();
        region.wait_done();
        let values: Vec<usize> = region.cells.iter().map(|c| c.load(Ordering::Relaxed)).collect();
        assert_published(&values, |i| i + 10);
        assert_exactly_once(LEN, &region.claims.lock().unwrap());
        worker.join().unwrap();
    });
    println!(
        "pool hand-off (caller + 1 worker, len {LEN}): {} interleavings explored",
        report.executions
    );
    assert!(report.violation.is_none(), "violation: {:?}", report.violation);
    assert!(report.complete, "exploration hit a bound before exhausting the tree");
}

#[test]
fn handoff_holds_with_two_workers_racing_the_caller() {
    let report = explore(Options::default(), || {
        let region = Arc::new(Region::new(2));
        let workers: Vec<_> = (0..2)
            .map(|_| {
                let region = Arc::clone(&region);
                spawn(move || region.drain())
            })
            .collect();
        region.drain();
        region.wait_done();
        let values: Vec<usize> = region.cells.iter().map(|c| c.load(Ordering::Relaxed)).collect();
        assert_published(&values, |i| i + 10);
        assert_exactly_once(2, &region.claims.lock().unwrap());
        for w in workers {
            w.join().unwrap();
        }
    });
    println!(
        "pool hand-off (caller + 2 workers, len 2): {} interleavings explored",
        report.executions
    );
    assert!(report.violation.is_none(), "violation: {:?}", report.violation);
    assert!(report.complete, "exploration hit a bound before exhausting the tree");
}

/// The mutation test: downgrade the hand-off edge (`finished`'s
/// `fetch_add`) from `AcqRel` to `Relaxed` — the exact bug the
/// `atomics::relaxed-handoff` lint rule exists to stop — and prove the
/// checker catches it. With no release/acquire on the completion
/// counter, the final completer's view does not include the other
/// participant's cell write, so the caller can observe `done` yet read
/// the cell's initial value.
mod mutated {
    use super::*;

    struct MutatedLatch {
        len: usize,
        next: AtomicUsize,
        finished: AtomicUsize,
    }

    impl MutatedLatch {
        fn new(len: usize) -> Self {
            MutatedLatch { len, next: AtomicUsize::new(0), finished: AtomicUsize::new(0) }
        }

        fn claim(&self) -> Option<(usize, usize)> {
            // Correct, as in the real protocol: atomicity alone makes
            // the allocator exact.
            let start = self.next.fetch_add(1, Ordering::Relaxed);
            if start >= self.len {
                return None;
            }
            Some((start, start + 1))
        }

        fn complete(&self, n: usize) -> bool {
            // SEEDED BUG: the real protocol uses AcqRel here. Relaxed
            // keeps the count exact but publishes nothing.
            self.finished.fetch_add(n, Ordering::Relaxed) + n >= self.len
        }
    }

    #[test]
    fn relaxed_handoff_downgrade_is_caught() {
        let report = explore(Options::default(), || {
            let latch = Arc::new(MutatedLatch::new(2));
            let cells = Arc::new((0..2).map(|_| AtomicUsize::new(0)).collect::<Vec<_>>());
            let done = Arc::new(Mutex::new(false));
            let done_cv = Arc::new(Condvar::new());
            let drain = {
                let latch = Arc::clone(&latch);
                let cells = Arc::clone(&cells);
                let done = Arc::clone(&done);
                let done_cv = Arc::clone(&done_cv);
                move || {
                    while let Some((start, end)) = latch.claim() {
                        for i in start..end {
                            cells[i].store(i + 10, Ordering::Relaxed);
                        }
                        if latch.complete(end - start) {
                            *done.lock().unwrap() = true;
                            done_cv.notify_all();
                        }
                    }
                }
            };
            let worker = spawn(drain.clone());
            drain();
            let mut g = done.lock().unwrap();
            while !*g {
                g = done_cv.wait(g).unwrap();
            }
            drop(g);
            let values: Vec<usize> = cells.iter().map(|c| c.load(Ordering::Relaxed)).collect();
            assert_published(&values, |i| i + 10);
            worker.join().unwrap();
        });
        println!("mutated hand-off: violation after {} interleavings", report.executions);
        let violation = report
            .violation
            .expect("the checker must catch the Relaxed downgrade of the hand-off edge");
        assert!(
            violation.contains("not published"),
            "violation should be the publication assert, got: {violation}"
        );
    }
}
