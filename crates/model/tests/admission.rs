//! Exhaustive model check of the serve stack's admission queue
//! (`proto::on_model::AdmissionQueue` — the exact code `crates/serve`
//! runs, instantiated against the instrumented sync layer).
//!
//! Two protocols from ISSUE-level history are verified here:
//!
//! * **Shed semantics** — `try_push` never blocks, and every
//!   `Shed { depth }` it returns carries `depth == capacity`, no matter
//!   how pops race the rejection (the depth is a locked snapshot).
//! * **SIGTERM drain** — after `close()`, racing producers are refused
//!   with `Closed`, consumers drain the remainder and terminate via
//!   `None`, and nothing is lost or duplicated. Termination is checked
//!   implicitly: a consumer that never exits is a deadlock or an op-
//!   budget violation, both of which fail the exploration.

use std::sync::Arc;
use std::time::Duration;
use taor_model::check::sync::spawn;
use taor_model::check::{explore, Options};
use taor_model::invariants::{assert_conserved, assert_sheds_at_capacity};
use taor_model::proto::on_model::AdmissionQueue;
use taor_model::proto::AdmitError;

/// Drain the queue until `close()` lands: the worker_loop shape from
/// crates/serve/src/server.rs.
fn consume(q: &AdmissionQueue<usize>) -> Vec<usize> {
    let mut got = Vec::new();
    loop {
        match q.pop_batch(2, Duration::from_millis(1)) {
            None => return got,
            Some(batch) => got.extend(batch),
        }
    }
}

#[test]
fn shed_depth_is_capacity_under_racing_pops() {
    let report = explore(Options::default(), || {
        let q = Arc::new(AdmissionQueue::new(1));
        let consumer = {
            let q = Arc::clone(&q);
            spawn(move || consume(&q))
        };
        // The body is the producer: push against the 1-slot queue while
        // the consumer races pops, recording accepted items and sheds.
        let mut pushed = Vec::new();
        let mut shed_depths = Vec::new();
        for i in 0..3 {
            match q.try_push(i) {
                Ok(()) => pushed.push(i),
                Err(AdmitError::Shed { depth }) => shed_depths.push(depth),
                Err(AdmitError::Closed) => unreachable!("queue is never closed here"),
            }
        }
        q.close();
        let popped = consumer.join().unwrap();
        assert_sheds_at_capacity(q.capacity(), &shed_depths);
        assert_conserved(pushed, popped);
    });
    println!(
        "admission shed (1 producer, 1 consumer, cap 1): {} interleavings explored",
        report.executions
    );
    assert!(report.violation.is_none(), "violation: {:?}", report.violation);
    assert!(report.complete, "exploration hit a bound before exhausting the tree");
}

#[test]
fn close_drains_and_terminates_with_a_racing_producer() {
    let report = explore(Options::default(), || {
        let q = Arc::new(AdmissionQueue::new(2));
        let producer = {
            let q = Arc::clone(&q);
            spawn(move || {
                // Races close(): every push either lands (and must be
                // drained) or is refused with Closed — never lost.
                let mut pushed = Vec::new();
                for i in 0..2 {
                    match q.try_push(i) {
                        Ok(()) => pushed.push(i),
                        Err(AdmitError::Closed) => {}
                        Err(AdmitError::Shed { .. }) => {}
                    }
                }
                pushed
            })
        };
        let consumer = {
            let q = Arc::clone(&q);
            spawn(move || consume(&q))
        };
        q.close();
        let pushed = producer.join().unwrap();
        let popped = consumer.join().unwrap();
        assert_conserved(pushed, popped);
    });
    println!(
        "admission drain (racing producer/close, cap 2): {} interleavings explored",
        report.executions
    );
    assert!(report.violation.is_none(), "violation: {:?}", report.violation);
    assert!(report.complete, "exploration hit a bound before exhausting the tree");
}
