//! # taor-model
//!
//! A loom-style deterministic model checker for the workspace's
//! hand-rolled concurrency, plus the shim layer that keeps production
//! code model-checkable by construction.
//!
//! The repro's correctness story rests on two small protocols: the
//! thread pool's atomic chunk hand-off (`vendor/rayon/src/pool.rs`) and
//! the serve stack's bounded [`proto::on_shim::AdmissionQueue`]. Stress
//! tests sample their interleavings; this crate *enumerates* them:
//!
//! * [`sync`] — the shim. In normal builds every name is a zero-cost
//!   re-export of the `std` primitive; under `--cfg taor_model` the
//!   same names resolve to the instrumented types in [`check::sync`],
//!   so code written against the shim can be driven by the checker
//!   without edits. The `concurrency::naked-atomic` lint rule keeps
//!   new code on this module.
//! * [`check`] — the checker: [`check::explore`] runs a closure over
//!   every schedule (DFS with a bounded-preemption cutoff) against a
//!   store-buffer weak-memory model where `Relaxed` loads may return
//!   any coherence-eligible value, not just the newest one.
//! * [`proto`] — the protocol cores, written once against the shim API
//!   and instantiated twice: `on_shim` (what `vendor/rayon` and
//!   `crates/serve` run in production) and `on_model` (what the model
//!   tests in `tests/` exhaustively verify).
//! * [`invariants`] — the invariant predicates shared between the model
//!   tests here and the width-8 stress suite in
//!   `crates/bench/tests/pool_stress.rs`, so each invariant is stated
//!   exactly once.
//!
//! See DESIGN.md §13 for the architecture, the weak-memory
//! approximation and its documented limits.

#![forbid(unsafe_code)]

pub mod check;
pub mod invariants;
pub mod proto;
pub mod sync;
