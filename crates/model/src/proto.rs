//! The extracted protocol cores, instantiated twice.
//!
//! The pool's chunk hand-off and the serve stack's admission queue are
//! written here exactly once, against a `sync_api` module alias, and
//! stamped out by [`protocol_impl!`] into two flavors:
//!
//! * [`on_shim`] — `sync_api = crate::sync`: the production flavor.
//!   `vendor/rayon`'s pool and `crates/serve`'s robustness layer use
//!   these types; in a normal build they compile to exactly the code
//!   they replaced (the shim is a `std` re-export).
//! * [`on_model`] — `sync_api = crate::check::sync`: the instrumented
//!   flavor the model tests in `tests/` drive through
//!   [`crate::check::explore`], enumerating every interleaving the
//!   declared orderings permit.
//!
//! Because both flavors expand from one macro body, the verified
//! protocol and the shipped protocol cannot drift apart: a change to
//! either is a change to both, and the model tests re-verify it.

/// Why `AdmissionQueue::try_push` refused an item. Shared by both
/// flavors (it contains no sync types).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmitError {
    /// The queue was at capacity: the caller must shed the request
    /// (HTTP 429), not wait.
    Shed {
        /// Depth at the instant of rejection, observed under the queue
        /// lock — always exactly the capacity, because pushes are
        /// guarded by the same lock so the depth can never exceed it.
        /// A racing pop may have drained the queue by the time the
        /// caller reads this value; it is a snapshot for the 429 body,
        /// not a promise the queue is still full.
        depth: usize,
    },
    /// The queue was closed for shutdown.
    Closed,
}

/// Expands to the protocol types against whatever `sync_api` names in
/// the expansion site. See module docs.
macro_rules! protocol_impl {
    () => {
        /// The pool's chunk allocator + completion latch: the atomic
        /// heart of `vendor/rayon`'s `Task`, minus the type-erased
        /// closure plumbing. Threads `claim()` disjoint chunks of
        /// `0..len` until the index space is exhausted, then report
        /// each chunk `complete()`; whoever completes the final index
        /// learns it (returns `true`) and signals the caller.
        pub struct ChunkLatch {
            len: usize,
            chunk: usize,
            next: sync_api::AtomicUsize,
            finished: sync_api::AtomicUsize,
        }

        impl ChunkLatch {
            /// A latch over `0..len` handed out in `chunk`-sized runs
            /// (minimum 1).
            pub fn new(len: usize, chunk: usize) -> Self {
                ChunkLatch {
                    len,
                    chunk: chunk.max(1),
                    next: sync_api::AtomicUsize::new(0),
                    finished: sync_api::AtomicUsize::new(0),
                }
            }

            /// Total index space covered by the latch.
            #[inline]
            pub fn len(&self) -> usize {
                self.len
            }

            #[inline]
            pub fn is_empty(&self) -> bool {
                self.len == 0
            }

            /// Configured chunk size.
            #[inline]
            pub fn chunk(&self) -> usize {
                self.chunk
            }

            /// Claim the next chunk: `Some((start, end))` with a
            /// half-open in-bounds range no other claimer will ever
            /// see, or `None` once the space is exhausted.
            #[inline]
            pub fn claim(&self) -> Option<(usize, usize)> {
                // Ordering::Relaxed — `next` is a pure chunk-index allocator:
                // fetch_add's read-modify-write atomicity alone guarantees
                // disjoint chunks, and no other memory is published through
                // it (completion is signalled by `finished`, not `next`).
                let start = self.next.fetch_add(self.chunk, sync_api::Ordering::Relaxed);
                if start >= self.len {
                    return None;
                }
                Some((start, (start + self.chunk).min(self.len)))
            }

            /// Report `n` indices finished. Returns `true` exactly for
            /// the call that completes the space — that caller must
            /// wake whoever waits on the region.
            #[inline]
            pub fn complete(&self, n: usize) -> bool {
                // Ordering::AcqRel — the hand-off edge. Release publishes
                // this chunk's writes to whichever thread observes the
                // counter reach `len`; Acquire makes that observer see every
                // earlier chunk's writes before it reports completion.
                self.finished.fetch_add(n, sync_api::Ordering::AcqRel) + n >= self.len
            }

            /// Advisory: has every chunk been handed out?
            #[inline]
            pub fn is_exhausted(&self) -> bool {
                // Ordering::Relaxed — an advisory read used only to garbage-
                // collect drained tasks from the queue; a stale value merely
                // delays the pop, correctness rests on `claim`'s own fetch_add.
                self.next.load(sync_api::Ordering::Relaxed) >= self.len
            }
        }

        struct QueueState<T> {
            items: std::collections::VecDeque<T>,
            closed: bool,
        }

        /// A bounded multi-producer multi-consumer queue with explicit
        /// load-shedding and batched consumption.
        ///
        /// Producers never block: a full queue is an
        /// [`AdmitError::Shed`](crate::proto::AdmitError) and the caller
        /// turns it into backpressure the client can see. Consumers
        /// block (bounded by a poll interval) and drain up to a
        /// micro-batch per wakeup.
        pub struct AdmissionQueue<T> {
            state: sync_api::Mutex<QueueState<T>>,
            cv: sync_api::Condvar,
            cap: usize,
        }

        /// A poisoned robustness-layer lock only means another thread
        /// panicked mid-push/pop; the queue's VecDeque is still
        /// structurally sound, so recover the guard instead of
        /// propagating the poison.
        fn relock<'a, T>(
            r: Result<
                sync_api::MutexGuard<'a, T>,
                std::sync::PoisonError<sync_api::MutexGuard<'a, T>>,
            >,
        ) -> sync_api::MutexGuard<'a, T> {
            r.unwrap_or_else(|e| e.into_inner())
        }

        /// The `(guard, timeout-flag)` pair `Condvar::wait_timeout`
        /// returns.
        type TimedWait<'a, T> = (sync_api::MutexGuard<'a, T>, sync_api::WaitTimeoutResult);

        /// [`relock`] for the `(guard, timeout-flag)` pair of
        /// `wait_timeout`.
        fn relock2<'a, T>(
            r: Result<TimedWait<'a, T>, std::sync::PoisonError<TimedWait<'a, T>>>,
        ) -> TimedWait<'a, T> {
            r.unwrap_or_else(|e| e.into_inner())
        }

        impl<T> AdmissionQueue<T> {
            /// A queue admitting at most `cap` items (minimum 1).
            pub fn new(cap: usize) -> Self {
                AdmissionQueue {
                    state: sync_api::Mutex::new(QueueState {
                        items: std::collections::VecDeque::new(),
                        closed: false,
                    }),
                    cv: sync_api::Condvar::new(),
                    cap: cap.max(1),
                }
            }

            /// Admit `item`, or refuse immediately: `Shed` at capacity,
            /// `Closed` during shutdown. Never blocks.
            pub fn try_push(&self, item: T) -> Result<(), crate::proto::AdmitError> {
                let mut st = relock(self.state.lock());
                if st.closed {
                    return Err(crate::proto::AdmitError::Closed);
                }
                if st.items.len() >= self.cap {
                    return Err(crate::proto::AdmitError::Shed { depth: st.items.len() });
                }
                st.items.push_back(item);
                drop(st);
                self.cv.notify_one();
                Ok(())
            }

            /// Wait up to `wait` for work, then drain up to `max` items.
            ///
            /// `Some(batch)` may be empty (timeout: poll again); `None`
            /// means the queue is closed *and* drained — the consumer
            /// should exit.
            pub fn pop_batch(&self, max: usize, wait: std::time::Duration) -> Option<Vec<T>> {
                let mut st = relock(self.state.lock());
                if st.items.is_empty() {
                    if st.closed {
                        return None;
                    }
                    let (g, _timeout) = relock2(self.cv.wait_timeout(st, wait));
                    st = g;
                }
                if st.items.is_empty() {
                    return if st.closed { None } else { Some(Vec::new()) };
                }
                let take = max.max(1).min(st.items.len());
                Some(st.items.drain(..take).collect())
            }

            /// Items currently queued.
            pub fn depth(&self) -> usize {
                relock(self.state.lock()).items.len()
            }

            /// Capacity.
            pub fn capacity(&self) -> usize {
                self.cap
            }

            /// Close for shutdown: producers get `Closed`, consumers
            /// drain the remainder and then see `None`.
            pub fn close(&self) {
                relock(self.state.lock()).closed = true;
                self.cv.notify_all();
            }

            /// Has `close` been called?
            pub fn is_closed(&self) -> bool {
                relock(self.state.lock()).closed
            }
        }
    };
}

/// Production flavor: `sync_api` is the shim ([`crate::sync`]), which a
/// normal build resolves to `std`.
pub mod on_shim {
    use crate::sync as sync_api;
    protocol_impl!();
}

/// Instrumented flavor: `sync_api` is [`crate::check::sync`]; only
/// constructible inside [`crate::check::explore`].
pub mod on_model {
    use crate::check::sync as sync_api;
    protocol_impl!();
}

#[cfg(test)]
mod tests {
    use super::on_shim::ChunkLatch;

    #[test]
    fn claims_cover_the_space_disjointly_and_in_order() {
        let latch = ChunkLatch::new(10, 3);
        let mut seen = Vec::new();
        while let Some((start, end)) = latch.claim() {
            assert!(start < end && end <= 10);
            seen.push((start, end));
        }
        assert_eq!(seen, vec![(0, 3), (3, 6), (6, 9), (9, 10)]);
        assert!(latch.is_exhausted());
        assert!(latch.claim().is_none());
    }

    #[test]
    fn complete_fires_exactly_on_the_final_index() {
        let latch = ChunkLatch::new(10, 3);
        let chunks: Vec<_> = std::iter::from_fn(|| latch.claim()).collect();
        let mut fired = 0;
        for (i, (start, end)) in chunks.iter().enumerate() {
            let done = latch.complete(end - start);
            if done {
                fired += 1;
                assert_eq!(i, chunks.len() - 1, "only the last completion latches");
            }
        }
        assert_eq!(fired, 1);
    }

    #[test]
    fn zero_length_latch_is_born_exhausted() {
        let latch = ChunkLatch::new(0, 4);
        assert!(latch.is_empty());
        assert!(latch.claim().is_none());
        assert!(latch.is_exhausted());
    }
}
