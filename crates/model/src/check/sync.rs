// taor-lint: allow(atomics) — instrumented stand-ins for the atomic
// types; `Ordering` values are interpreted by the memory model, not
// used for real synchronization.
//! Instrumented drop-in replacements for the `std::sync` subset the
//! shim exposes. Same signatures, same semantics — except every
//! operation is a scheduling point driven by the explorer, and every
//! atomic access goes through the store-buffer memory model.
//!
//! Construction is also a scheduling point: location and lock ids must
//! be assigned in a deterministic order for trail replay to work, and
//! constructors can run in thread-local code where real time would
//! otherwise race id allocation.

use super::exec::{relock, with_ctx, Blocked, Execution, MutexState, Step, ThreadInfo};
use std::sync::atomic::Ordering as StdOrdering;
use std::sync::Arc;
use std::time::Duration;

pub use std::sync::atomic::Ordering;

fn ctx() -> (Arc<Execution>, usize) {
    with_ctx(|exec, tid| (Arc::clone(exec), tid))
}

fn alloc_loc(init: u64) -> usize {
    let (exec, _) = ctx();
    exec.op(|st, _| Step::Done(st.memory.alloc(init)))
}

fn atomic_load(loc: usize, ord: StdOrdering) -> u64 {
    let (exec, _) = ctx();
    exec.op(|st, tid| {
        let n = st.memory.eligible(loc, &st.threads[tid].view, ord);
        let choice = st.choose(n);
        let super::exec::ExecState { memory, threads, .. } = &mut *st;
        Step::Done(memory.load(loc, &mut threads[tid].view, ord, choice))
    })
}

fn atomic_store(loc: usize, val: u64, ord: StdOrdering) {
    let (exec, _) = ctx();
    exec.op(|st, tid| {
        let super::exec::ExecState { memory, threads, .. } = &mut *st;
        memory.store(loc, &mut threads[tid].view, ord, val);
        Step::Done(())
    });
}

fn atomic_rmw(loc: usize, ord: StdOrdering, f: impl Fn(u64) -> u64) -> u64 {
    let (exec, _) = ctx();
    exec.op(|st, tid| {
        let super::exec::ExecState { memory, threads, .. } = &mut *st;
        Step::Done(memory.rmw(loc, &mut threads[tid].view, ord, &f))
    })
}

/// Instrumented `AtomicUsize`: a handle onto one model memory location.
#[derive(Debug)]
pub struct AtomicUsize {
    loc: usize,
}

impl AtomicUsize {
    pub fn new(v: usize) -> Self {
        AtomicUsize { loc: alloc_loc(v as u64) }
    }

    pub fn load(&self, ord: Ordering) -> usize {
        atomic_load(self.loc, ord) as usize
    }

    pub fn store(&self, v: usize, ord: Ordering) {
        atomic_store(self.loc, v as u64, ord);
    }

    pub fn swap(&self, v: usize, ord: Ordering) -> usize {
        atomic_rmw(self.loc, ord, |_| v as u64) as usize
    }

    pub fn fetch_add(&self, v: usize, ord: Ordering) -> usize {
        atomic_rmw(self.loc, ord, |old| old.wrapping_add(v as u64)) as usize
    }

    pub fn fetch_sub(&self, v: usize, ord: Ordering) -> usize {
        atomic_rmw(self.loc, ord, |old| old.wrapping_sub(v as u64)) as usize
    }
}

/// Instrumented `AtomicBool` (0 = false, nonzero = true).
#[derive(Debug)]
pub struct AtomicBool {
    loc: usize,
}

impl AtomicBool {
    pub fn new(v: bool) -> Self {
        AtomicBool { loc: alloc_loc(u64::from(v)) }
    }

    pub fn load(&self, ord: Ordering) -> bool {
        atomic_load(self.loc, ord) != 0
    }

    pub fn store(&self, v: bool, ord: Ordering) {
        atomic_store(self.loc, u64::from(v), ord);
    }

    pub fn swap(&self, v: bool, ord: Ordering) -> bool {
        atomic_rmw(self.loc, ord, |_| u64::from(v)) != 0
    }
}

/// Instrumented mutex. The lock *protocol* (who may hold it, the
/// happens-before edge between holders) lives in the model; the guarded
/// data sits in a real `std` mutex that is only ever taken by the
/// model-designated holder, so access is race-free by construction.
#[derive(Debug)]
pub struct Mutex<T> {
    id: usize,
    data: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        let (exec, _) = ctx();
        let id = exec.op(|st, _| {
            st.mutexes.push(MutexState::default());
            Step::Done(st.mutexes.len() - 1)
        });
        Mutex { id, data: std::sync::Mutex::new(value) }
    }

    pub fn lock(&self) -> std::sync::LockResult<MutexGuard<'_, T>> {
        let id = self.id;
        let (exec, _) = ctx();
        exec.op(|st, tid| {
            if st.mutexes[id].held_by.is_some() {
                Step::Block(Blocked::Mutex(id))
            } else {
                st.acquire_mutex(id, tid);
                Step::Done(())
            }
        });
        let inner = relock(&self.data);
        Ok(MutexGuard { mutex: self, inner: Some(inner) })
    }
}

/// Guard for the instrumented [`Mutex`]; releasing it is a scheduling
/// point (the model unlock).
pub struct MutexGuard<'a, T> {
    mutex: &'a Mutex<T>,
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        match &self.inner {
            Some(g) => g,
            None => unreachable!("guard data taken only on drop/wait"),
        }
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        match &mut self.inner {
            Some(g) => g,
            None => unreachable!("guard data taken only on drop/wait"),
        }
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        let Some(inner) = self.inner.take() else {
            // Condvar::wait took the data guard and released the model
            // lock itself.
            return;
        };
        drop(inner);
        // During an abort unwind the execution is over; running the
        // unlock op would panic again (double panic aborts the process).
        if std::thread::panicking() {
            return;
        }
        let id = self.mutex.id;
        let (exec, _) = ctx();
        exec.op(|st, tid| {
            st.release_mutex(id, tid);
            Step::Done(())
        });
    }
}

/// Result of [`Condvar::wait_timeout`]; mirrors the `std` API (which
/// has no public constructor, hence our own type).
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Instrumented condvar. `wait_timeout` carries no clock: while the
/// waiter has timeout budget left, "the timer fired" is simply one of
/// the scheduler's choices, which explores a spurious/timed-out wake at
/// every point the real timer could fire.
#[derive(Debug)]
pub struct Condvar {
    id: usize,
}

impl Condvar {
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        let (exec, _) = ctx();
        let id = exec.op(|st, _| {
            let id = st.condvars;
            st.condvars += 1;
            Step::Done(id)
        });
        Condvar { id }
    }

    fn wait_inner<'a, T>(
        &self,
        mut guard: MutexGuard<'a, T>,
        timeout_ok: bool,
    ) -> (MutexGuard<'a, T>, bool) {
        let mutex = guard.mutex;
        let mid = mutex.id;
        let cv = self.id;
        // Drop the real data guard now; the model-side release happens
        // atomically with waiter registration in phase 0 below.
        drop(guard.inner.take());
        drop(guard);
        let mut registered = false;
        let (exec, _) = ctx();
        let timed_out = exec.op(|st, tid| {
            if !registered {
                registered = true;
                st.release_mutex(mid, tid);
                Step::Block(Blocked::Condvar { cv, timeout_ok, notified: false })
            } else if st.mutexes[mid].held_by.is_some() {
                Step::Block(Blocked::Mutex(mid))
            } else {
                st.acquire_mutex(mid, tid);
                let timed_out = st.threads[tid].woke_by_timeout;
                st.threads[tid].woke_by_timeout = false;
                Step::Done(timed_out)
            }
        });
        let inner = relock(&mutex.data);
        (MutexGuard { mutex, inner: Some(inner) }, timed_out)
    }

    pub fn wait<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
    ) -> std::sync::LockResult<MutexGuard<'a, T>> {
        Ok(self.wait_inner(guard, false).0)
    }

    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        _dur: Duration,
    ) -> std::sync::LockResult<(MutexGuard<'a, T>, WaitTimeoutResult)> {
        let (guard, timed_out) = self.wait_inner(guard, true);
        Ok((guard, WaitTimeoutResult { timed_out }))
    }

    pub fn notify_one(&self) {
        let cv = self.id;
        let (exec, _) = ctx();
        exec.op(|st, _| {
            let waiters: Vec<usize> = (0..st.threads.len())
                .filter(|&t| {
                    matches!(st.threads[t].blocked,
                        Blocked::Condvar { cv: c, notified: false, .. } if c == cv)
                })
                .collect();
            if !waiters.is_empty() {
                // Which waiter wakes is the scheduler's choice.
                let pick = waiters[st.choose(waiters.len())];
                if let Blocked::Condvar { notified, .. } = &mut st.threads[pick].blocked {
                    *notified = true;
                }
            }
            Step::Done(())
        });
    }

    pub fn notify_all(&self) {
        let cv = self.id;
        let (exec, _) = ctx();
        exec.op(|st, _| {
            for t in 0..st.threads.len() {
                if let Blocked::Condvar { cv: c, notified, .. } = &mut st.threads[t].blocked {
                    if *c == cv {
                        *notified = true;
                    }
                }
            }
            Step::Done(())
        });
    }
}

/// Handle to a spawned model thread.
pub struct JoinHandle<T> {
    exec: Arc<Execution>,
    tid: usize,
    slot: Arc<std::sync::Mutex<Option<T>>>,
}

impl<T> JoinHandle<T> {
    pub fn join(self) -> std::thread::Result<T> {
        let target = self.tid;
        self.exec.op(|st, tid| {
            if st.threads[target].blocked == Blocked::Finished {
                let view = st.threads[target].view.clone();
                st.threads[tid].view.join(&view);
                Step::Done(())
            } else {
                Step::Block(Blocked::Join(target))
            }
        });
        match relock(&self.slot).take() {
            Some(v) => Ok(v),
            None => Err(Box::new("model thread finished without a result")),
        }
    }
}

/// Spawn a model thread. The child inherits the parent's view (spawn is
/// a happens-before edge), and starts life schedulable; whether it runs
/// before or after the parent's next step is the scheduler's choice.
pub fn spawn<T, F>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let (exec, _) = ctx();
    let child = exec.op(|st, tid| {
        let view = st.threads[tid].view.clone();
        let budget = st.default_timeout_budget;
        st.threads.push(ThreadInfo {
            view,
            blocked: Blocked::None,
            timeout_budget: budget,
            woke_by_timeout: false,
        });
        st.live += 1;
        st.spawn_pending += 1;
        Step::Done(st.threads.len() - 1)
    });
    let slot: Arc<std::sync::Mutex<Option<T>>> = Arc::new(std::sync::Mutex::new(None));
    let slot2 = Arc::clone(&slot);
    let exec2 = Arc::clone(&exec);
    let handle = std::thread::spawn(move || {
        super::exec::run_model_thread(exec2, child, move || {
            let out = f();
            *relock(&slot2) = Some(out);
        });
    });
    {
        let mut st = relock(&exec.state);
        st.os_handles.push(handle);
        st.spawn_pending -= 1;
    }
    JoinHandle { exec, tid: child, slot }
}

/// A pure scheduling point: lets any other schedulable thread run.
pub fn yield_now() {
    let (exec, _) = ctx();
    exec.op(|_, _| Step::Done(()));
}
