//! The checker: exhaustive, replayable exploration of a model body.
//!
//! [`explore`] runs a closure — the *model body* — once per schedule.
//! Thread 0 executes the body; threads it creates through
//! [`sync::spawn`] join the same execution. Every instrumented
//! operation is a decision point: which thread steps next, which store
//! a relaxed load observes, which waiter a notify wakes. Decisions are
//! recorded on a trail; after each execution the deepest
//! not-yet-exhausted decision is advanced and the prefix replayed,
//! which is a depth-first walk of the whole schedule tree.
//!
//! Exploration is *exhaustive up to the preemption bound*: schedules
//! that preempt a runnable thread more than `max_preemptions` times are
//! pruned. Empirically (and per the CHESS result) almost all
//! concurrency bugs manifest within two preemptions; the bound is what
//! keeps the state space finite without random sampling. A violation is
//! any panic in the model body (assertion failure), a deadlock, or an
//! execution exceeding the op budget (livelock).

pub(crate) mod exec;
pub(crate) mod memory;
pub mod sync;

use exec::{relock, run_model_thread, Blocked, Execution, ThreadInfo};
use std::sync::Arc;

/// Exploration limits. `Default` is tuned for protocol-sized models:
/// a handful of threads, tens of instrumented ops each.
#[derive(Debug, Clone)]
pub struct Options {
    /// Preemption bound: max times a *runnable* thread is switched away
    /// from. Blocking switches are free.
    pub max_preemptions: usize,
    /// Hard cap on explored executions; hitting it yields
    /// `complete: false` with no violation.
    pub max_executions: usize,
    /// Per-execution op budget; exceeding it is reported as a livelock.
    pub max_ops_per_execution: usize,
    /// Per-thread budget of "the timer fired" wakes for `wait_timeout`,
    /// so timeout loops terminate in the clockless model.
    pub timeout_polls: usize,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            max_preemptions: 2,
            max_executions: 1_000_000,
            max_ops_per_execution: 50_000,
            timeout_polls: 2,
        }
    }
}

/// What an exploration found.
#[derive(Debug)]
pub struct Report {
    /// Executions (distinct schedules) actually run.
    pub executions: usize,
    /// True when the schedule tree was exhausted within the bounds.
    pub complete: bool,
    /// First violation found, if any; exploration stops at the first.
    pub violation: Option<String>,
}

/// Explore every schedule of `body` within `opts`' bounds. The body is
/// re-run once per schedule, so it must be a pure function of the model
/// state it builds internally (no mutable captures).
pub fn explore<F>(opts: Options, body: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    let body = Arc::new(body);
    let mut trail = Vec::new();
    let mut executions = 0usize;
    loop {
        executions += 1;
        let exec = Execution::new(&opts, std::mem::take(&mut trail));
        {
            let mut st = relock(&exec.state);
            st.threads.push(ThreadInfo {
                view: memory::View::default(),
                blocked: Blocked::None,
                timeout_budget: opts.timeout_polls,
                woke_by_timeout: false,
            });
            st.live = 1;
            st.current = 0;
            st.spawn_pending = 1;
        }
        let body_run = Arc::clone(&body);
        let exec_run = Arc::clone(&exec);
        let handle = std::thread::spawn(move || run_model_thread(exec_run, 0, move || body_run()));
        {
            let mut st = relock(&exec.state);
            st.os_handles.push(handle);
            st.spawn_pending -= 1;
        }
        // Wait for the execution to finish or abort.
        {
            let mut st = relock(&exec.state);
            while st.live > 0 && !st.abort {
                st = exec.cv.wait(st).unwrap_or_else(|e| e.into_inner());
            }
        }
        // Join every OS thread; `spawn_pending` covers the window where
        // a spawner has registered a thread but not yet its OS handle.
        loop {
            let next = {
                let mut st = relock(&exec.state);
                match st.os_handles.pop() {
                    Some(h) => Some(Some(h)),
                    None if st.spawn_pending > 0 => Some(None),
                    None => None,
                }
            };
            match next {
                Some(Some(h)) => {
                    // taor-lint: allow(err::swallowed-result) — a panicked
                    // model thread already recorded its violation via
                    // fail_from_panic; the join error is that same panic.
                    let _ = h.join();
                }
                Some(None) => std::thread::yield_now(),
                None => break,
            }
        }
        let failure = {
            let mut st = relock(&exec.state);
            trail = std::mem::take(&mut st.trail);
            st.failure.take()
        };
        if let Some(message) = failure {
            return Report { executions, complete: false, violation: Some(message) };
        }
        // DFS advance: drop exhausted decisions from the tail, bump the
        // deepest live one. An empty trail means the tree is exhausted.
        loop {
            match trail.last_mut() {
                None => return Report { executions, complete: true, violation: None },
                Some(c) if c.selected + 1 < c.options => {
                    c.selected += 1;
                    break;
                }
                Some(_) => {
                    trail.pop();
                }
            }
        }
        if executions >= opts.max_executions {
            return Report { executions, complete: false, violation: None };
        }
    }
}
