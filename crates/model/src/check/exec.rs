//! One execution of the model under one schedule, and the cooperative
//! machinery that makes real OS threads take instrumented steps one at
//! a time.
//!
//! Model threads are ordinary `std` threads, but every instrumented
//! operation (atomic access, mutex acquire/release, condvar wait,
//! spawn, join, yield) funnels through [`Execution::op`]: the thread
//! parks until the scheduler's `current` token points at it, performs
//! the operation's effects on the shared [`ExecState`] while holding
//! the state lock, then picks the next thread to run from the
//! deterministic schedulable set — either replaying the recorded trail
//! or extending it with a first-unexplored choice. Code *between*
//! instrumented operations runs freely; it is thread-local by
//! construction (all shared state goes through the shims), so it cannot
//! introduce nondeterminism.
//!
//! Blocking is modelled explicitly: a thread that would block registers
//! a [`Blocked`] reason and re-runs its operation closure when the
//! scheduler hands it the token again. Timeouts carry no clock — a
//! thread in `wait_timeout` is simply *schedulable as a timeout wake*
//! while it has budget left, which explores "the timer fired" at every
//! point the real timer could fire.

use super::memory::Memory;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Sentinel for "no thread holds the token" (execution finished).
const NO_THREAD: usize = usize::MAX;

/// One recorded decision: which of `options` alternatives was taken.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Choice {
    pub selected: usize,
    pub options: usize,
}

/// Why a thread cannot run right now.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Blocked {
    /// Runnable.
    None,
    /// Waiting to acquire model mutex `id`.
    Mutex(usize),
    /// Waiting on model condvar `cv`.
    Condvar { cv: usize, timeout_ok: bool, notified: bool },
    /// Waiting for thread `tid` to finish.
    Join(usize),
    /// Finished.
    Finished,
}

#[derive(Debug)]
pub(crate) struct ThreadInfo {
    pub view: super::memory::View,
    pub blocked: Blocked,
    /// Remaining "the timer fired" wakes for `wait_timeout` calls.
    pub timeout_budget: usize,
    /// Set when the last condvar wake was a timeout, cleared on read.
    pub woke_by_timeout: bool,
}

#[derive(Debug, Default)]
pub(crate) struct MutexState {
    pub held_by: Option<usize>,
    /// View released by the last unlock; joined by the next holder —
    /// the lock's happens-before edge.
    pub view: super::memory::View,
}

/// Shared state of one execution, guarded by [`Execution::state`].
pub(crate) struct ExecState {
    pub memory: Memory,
    pub threads: Vec<ThreadInfo>,
    pub mutexes: Vec<MutexState>,
    pub condvars: usize,
    /// The thread allowed to pass its next operation.
    pub current: usize,
    /// Threads not yet finished.
    pub live: usize,
    /// DFS trail: replayed up to `depth`, extended beyond it.
    pub trail: Vec<Choice>,
    pub depth: usize,
    pub preemptions: usize,
    pub max_preemptions: usize,
    pub default_timeout_budget: usize,
    pub ops: usize,
    pub max_ops: usize,
    pub abort: bool,
    pub failure: Option<String>,
    /// OS handles of spawned model threads, drained by the explorer.
    pub os_handles: Vec<std::thread::JoinHandle<()>>,
    /// Spawn operations whose OS handle has not been registered yet.
    pub spawn_pending: usize,
}

impl ExecState {
    /// Take (replay or extend) one decision with `options` alternatives.
    pub fn choose(&mut self, options: usize) -> usize {
        if options <= 1 {
            return 0;
        }
        let d = self.depth;
        self.depth += 1;
        if d < self.trail.len() {
            if self.trail[d].options != options {
                // Replay divergence means the engine itself leaked
                // nondeterminism; surface it loudly instead of
                // exploring garbage.
                self.fail(format!(
                    "internal: nondeterministic replay at depth {d} \
                     ({} options recorded, {options} offered)",
                    self.trail[d].options
                ));
                return 0;
            }
            self.trail[d].selected
        } else {
            self.trail.push(Choice { selected: 0, options });
            0
        }
    }

    pub fn fail(&mut self, msg: String) {
        if self.failure.is_none() {
            self.failure = Some(msg);
        }
        self.abort = true;
        self.current = NO_THREAD;
    }

    /// May `t` be handed the token right now?
    fn schedulable(&self, t: usize) -> bool {
        match self.threads[t].blocked {
            Blocked::None => true,
            Blocked::Mutex(m) => self.mutexes[m].held_by.is_none(),
            Blocked::Condvar { notified, timeout_ok, .. } => {
                notified || (timeout_ok && self.threads[t].timeout_budget > 0)
            }
            Blocked::Join(target) => self.threads[target].blocked == Blocked::Finished,
            Blocked::Finished => false,
        }
    }

    /// Pick and install the next token holder. `tid` is the yielding
    /// thread; `yielder_runnable` says whether it could itself continue
    /// (false when it just blocked or finished).
    fn schedule_next(&mut self, tid: usize, yielder_runnable: bool) {
        if self.abort {
            return;
        }
        let mut options: Vec<usize> =
            (0..self.threads.len()).filter(|&t| self.schedulable(t)).collect();
        if options.is_empty() {
            if self.live == 0 {
                self.current = NO_THREAD;
            } else {
                let stuck: Vec<usize> = (0..self.threads.len())
                    .filter(|&t| self.threads[t].blocked != Blocked::Finished)
                    .collect();
                self.fail(format!("deadlock: threads {stuck:?} blocked with no waker"));
            }
            return;
        }
        // Bounded preemption: once the budget is spent, a thread that
        // can continue must continue; only blocking yields switch.
        if yielder_runnable && self.preemptions >= self.max_preemptions {
            options = vec![tid];
        }
        let pick = options[self.choose(options.len())];
        if self.abort {
            return;
        }
        if yielder_runnable && pick != tid {
            self.preemptions += 1;
        }
        // Convert the wake reason for the picked thread.
        match self.threads[pick].blocked {
            Blocked::None => {}
            Blocked::Mutex(_) | Blocked::Join(_) => {
                self.threads[pick].blocked = Blocked::None;
            }
            Blocked::Condvar { notified, .. } => {
                if notified {
                    self.threads[pick].woke_by_timeout = false;
                } else {
                    self.threads[pick].timeout_budget -= 1;
                    self.threads[pick].woke_by_timeout = true;
                }
                self.threads[pick].blocked = Blocked::None;
            }
            Blocked::Finished => unreachable!("finished threads are never schedulable"),
        }
        self.current = pick;
    }

    /// Lock-protocol effects, shared by `Mutex::lock` and the condvar
    /// reacquire phase.
    pub fn acquire_mutex(&mut self, m: usize, tid: usize) {
        self.mutexes[m].held_by = Some(tid);
        let view = self.mutexes[m].view.clone();
        self.threads[tid].view.join(&view);
    }

    pub fn release_mutex(&mut self, m: usize, tid: usize) {
        self.mutexes[m].held_by = None;
        let view = self.threads[tid].view.clone();
        self.mutexes[m].view.join(&view);
    }
}

/// What an operation closure tells the engine to do.
pub(crate) enum Step<R> {
    /// Operation done; hand the token on and return `R`.
    Done(R),
    /// Cannot proceed: park with this reason and retry when scheduled.
    Block(Blocked),
}

/// Panic payload used to tear threads out of an aborted execution; the
/// thread wrapper swallows it.
pub(crate) struct AbortExecution;

/// One execution: shared scheduler state + the park/wake condvar.
pub(crate) struct Execution {
    pub state: Mutex<ExecState>,
    pub cv: Condvar,
}

pub(crate) fn relock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

thread_local! {
    static CTX: std::cell::RefCell<Option<(Arc<Execution>, usize)>> =
        const { std::cell::RefCell::new(None) };
}

/// Run `f` with the current thread's execution context; panics with a
/// clear message when a shim primitive is used outside `explore`.
pub(crate) fn with_ctx<R>(f: impl FnOnce(&Arc<Execution>, usize) -> R) -> R {
    CTX.with(|c| {
        let borrow = c.borrow();
        match borrow.as_ref() {
            Some((exec, tid)) => f(exec, *tid),
            None => panic!(
                "taor-model instrumented primitive used outside check::explore \
                 (model types only work inside a model body)"
            ),
        }
    })
}

impl Execution {
    pub fn new(opts: &super::Options, trail: Vec<Choice>) -> Arc<Execution> {
        Arc::new(Execution {
            state: Mutex::new(ExecState {
                memory: Memory::default(),
                threads: Vec::new(),
                mutexes: Vec::new(),
                condvars: 0,
                current: 0,
                live: 0,
                trail,
                depth: 0,
                preemptions: 0,
                max_preemptions: opts.max_preemptions,
                default_timeout_budget: opts.timeout_polls,
                ops: 0,
                max_ops: opts.max_ops_per_execution,
                abort: false,
                failure: None,
                os_handles: Vec::new(),
                spawn_pending: 0,
            }),
            cv: Condvar::new(),
        })
    }

    /// The operation funnel: park for the token, run `f` (repeatedly if
    /// it blocks), schedule the next thread, return. See module docs.
    pub fn op<R>(self: &Arc<Self>, mut f: impl FnMut(&mut ExecState, usize) -> Step<R>) -> R {
        let tid = with_ctx(|_, tid| tid);
        let mut st = relock(&self.state);
        loop {
            while st.current != tid && !st.abort {
                st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
            }
            if st.abort {
                drop(st);
                std::panic::panic_any(AbortExecution);
            }
            st.ops += 1;
            if st.ops > st.max_ops {
                let max_ops = st.max_ops;
                st.fail(format!(
                    "execution exceeded {max_ops} operations — livelock or unbounded loop in the model"
                ));
                self.cv.notify_all();
                drop(st);
                std::panic::panic_any(AbortExecution);
            }
            match f(&mut st, tid) {
                Step::Done(r) => {
                    let runnable = st.threads[tid].blocked == Blocked::None;
                    st.schedule_next(tid, runnable);
                    self.cv.notify_all();
                    return r;
                }
                Step::Block(reason) => {
                    st.threads[tid].blocked = reason;
                    st.schedule_next(tid, false);
                    self.cv.notify_all();
                }
            }
        }
    }

    /// Record a violation coming from a model-thread panic.
    pub fn fail_from_panic(self: &Arc<Self>, payload: Box<dyn std::any::Any + Send>) {
        let msg = payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_string());
        let mut st = relock(&self.state);
        st.fail(msg);
        self.cv.notify_all();
    }
}

/// Register thread `tid`'s context and run `body` under the model's
/// panic discipline. The caller has already added the `ThreadInfo`.
pub(crate) fn run_model_thread(exec: Arc<Execution>, tid: usize, body: impl FnOnce()) {
    CTX.with(|c| *c.borrow_mut() = Some((Arc::clone(&exec), tid)));
    let result = catch_unwind(AssertUnwindSafe(body));
    match result {
        Ok(()) => {
            // Orderly finish: an op that marks this thread done; joiners
            // become schedulable, the last finish completes the run.
            // The finish op itself can abort (panic) when another thread
            // already failed the execution — swallow that like any abort.
            let finish = catch_unwind(AssertUnwindSafe(|| {
                exec.op(|st, tid| {
                    st.threads[tid].blocked = Blocked::Finished;
                    st.live -= 1;
                    Step::Done(())
                });
            }));
            if finish.is_err() {
                let mut st = relock(&exec.state);
                if st.threads[tid].blocked != Blocked::Finished {
                    st.threads[tid].blocked = Blocked::Finished;
                    st.live = st.live.saturating_sub(1);
                }
                exec.cv.notify_all();
            }
        }
        Err(payload) if payload.is::<AbortExecution>() => {
            let mut st = relock(&exec.state);
            st.threads[tid].blocked = Blocked::Finished;
            st.live = st.live.saturating_sub(1);
            exec.cv.notify_all();
        }
        Err(payload) => {
            {
                let mut st = relock(&exec.state);
                st.threads[tid].blocked = Blocked::Finished;
                st.live = st.live.saturating_sub(1);
            }
            exec.fail_from_panic(payload);
        }
    }
    CTX.with(|c| *c.borrow_mut() = None);
}
