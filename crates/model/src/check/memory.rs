// taor-lint: allow(atomics) — this file *implements* the checker's memory
// semantics; every `Ordering` token here is interpreted input, not a
// synchronization choice in need of a justification comment.
//! The weak-memory approximation: per-location store buffers + views.
//!
//! Each atomic location keeps every store ever made to it, in
//! modification order. Each model thread carries a [`View`]: for every
//! location, the index of the oldest store it is still allowed to read
//! (its coherence "front"). The rules, a deliberately small operational
//! fragment of C11:
//!
//! * A **load** may read *any* store at or after the thread's front for
//!   that location — under `Relaxed` that is the whole eligible suffix,
//!   which is exactly how stale values reach readers. Which store is
//!   read is a scheduler choice point, so the DFS enumerates every
//!   staleness the declared orderings permit. Reading store `i` moves
//!   the front to `i` (coherence: a thread never reads backwards).
//! * A **store** appends to the buffer and moves the writer's front past
//!   everything older. A `Release` store attaches the writer's current
//!   view to the new entry.
//! * An **`Acquire` load** that reads a store carrying an attached view
//!   joins that view into its own — the synchronizes-with edge.
//! * An **RMW** always reads the *newest* store (its read-modify-write
//!   atomicity is what makes `fetch_add` a correct chunk allocator even
//!   at `Relaxed`), and continues the release sequence: the entry it
//!   appends inherits the attached view of the entry it replaced,
//!   merged with the writer's own view when the RMW is itself `Release`.
//! * **`SeqCst`** is approximated as `AcqRel` plus "reads the newest
//!   store". There is no global SC order beyond that; programs relying
//!   on SC fences or IRIW-style total ordering are outside this model
//!   (documented in DESIGN.md §13).
//!
//! Plain (non-atomic) data is modelled by the tests as atomics accessed
//! with `Relaxed`, so "the reader saw a stale value" stands in for the
//! data race the real program would have. The checker therefore proves
//! *publication* (values must be visible across the claimed
//! happens-before edges), not race-freedom per se.

use std::sync::atomic::Ordering;

/// Per-thread (and per-lock, per-release-entry) visibility: for each
/// location id, the index of the oldest store still readable.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct View {
    fronts: Vec<usize>,
}

impl View {
    pub fn front(&self, loc: usize) -> usize {
        self.fronts.get(loc).copied().unwrap_or(0)
    }

    pub fn advance(&mut self, loc: usize, idx: usize) {
        if self.fronts.len() <= loc {
            self.fronts.resize(loc + 1, 0);
        }
        if self.fronts[loc] < idx {
            self.fronts[loc] = idx;
        }
    }

    /// Pointwise maximum: afterwards this view sees at least everything
    /// `other` saw.
    pub fn join(&mut self, other: &View) {
        for (loc, &f) in other.fronts.iter().enumerate() {
            self.advance(loc, f);
        }
    }
}

/// One entry in a location's modification order.
#[derive(Debug, Clone)]
struct Store {
    val: u64,
    /// The view released with this store (present when the store — or
    /// the release-sequence head it continues — was `Release`).
    rel_view: Option<View>,
}

#[derive(Debug, Default)]
struct Location {
    stores: Vec<Store>,
}

/// All atomic locations of one execution.
#[derive(Debug, Default)]
pub struct Memory {
    locs: Vec<Location>,
}

fn is_acquire(ord: Ordering) -> bool {
    matches!(ord, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
}

fn is_release(ord: Ordering) -> bool {
    matches!(ord, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
}

impl Memory {
    /// Register a new location holding `init`, visible to every thread.
    pub fn alloc(&mut self, init: u64) -> usize {
        self.locs.push(Location { stores: vec![Store { val: init, rel_view: None }] });
        self.locs.len() - 1
    }

    /// How many stores a load at `loc` may choose between, given the
    /// reader's view. `SeqCst` loads collapse the choice to the newest
    /// store (the SC approximation).
    pub fn eligible(&self, loc: usize, view: &View, ord: Ordering) -> usize {
        let n = self.locs[loc].stores.len();
        if ord == Ordering::SeqCst {
            1
        } else {
            n - view.front(loc).min(n - 1)
        }
    }

    /// Perform the load that reads the `choice`-th eligible store
    /// (0 = oldest eligible). Returns the value and applies the
    /// coherence/synchronization effects to `view`.
    pub fn load(&self, loc: usize, view: &mut View, ord: Ordering, choice: usize) -> u64 {
        let stores = &self.locs[loc].stores;
        let idx = if ord == Ordering::SeqCst {
            stores.len() - 1
        } else {
            view.front(loc).min(stores.len() - 1) + choice
        };
        let store = &stores[idx];
        view.advance(loc, idx);
        if is_acquire(ord) {
            if let Some(rv) = &store.rel_view {
                view.join(rv);
            }
        }
        store.val
    }

    /// Append a store; a plain store ends any release sequence at this
    /// location.
    pub fn store(&mut self, loc: usize, view: &mut View, ord: Ordering, val: u64) {
        let idx = self.locs[loc].stores.len();
        view.advance(loc, idx);
        let rel_view = is_release(ord).then(|| view.clone());
        self.locs[loc].stores.push(Store { val, rel_view });
    }

    /// Read-modify-write: reads the newest store, appends `f(old)`.
    /// Returns the old value.
    pub fn rmw(
        &mut self,
        loc: usize,
        view: &mut View,
        ord: Ordering,
        f: impl FnOnce(u64) -> u64,
    ) -> u64 {
        let stores = &self.locs[loc].stores;
        let last = stores.len() - 1;
        let old = stores[last].val;
        let mut inherited = stores[last].rel_view.clone();
        view.advance(loc, last);
        if is_acquire(ord) {
            if let Some(rv) = &inherited {
                view.join(rv);
            }
        }
        let idx = last + 1;
        view.advance(loc, idx);
        // Release-sequence continuation: the new entry keeps publishing
        // what the replaced entry published, plus this writer's view
        // when the RMW itself releases.
        if is_release(ord) {
            match &mut inherited {
                Some(rv) => rv.join(view),
                None => inherited = Some(view.clone()),
            }
        }
        let new = f(old);
        self.locs[loc].stores.push(Store { val: new, rel_view: inherited });
        old
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relaxed_load_may_read_the_whole_eligible_suffix() {
        let mut mem = Memory::default();
        let mut writer = View::default();
        let loc = mem.alloc(0);
        mem.store(loc, &mut writer, Ordering::Relaxed, 1);
        mem.store(loc, &mut writer, Ordering::Relaxed, 2);
        let reader = View::default();
        assert_eq!(mem.eligible(loc, &reader, Ordering::Relaxed), 3);
        let mut r0 = reader.clone();
        assert_eq!(mem.load(loc, &mut r0, Ordering::Relaxed, 0), 0);
        let mut r2 = reader.clone();
        assert_eq!(mem.load(loc, &mut r2, Ordering::Relaxed, 2), 2);
        // Coherence: after reading store 2, older stores are gone.
        assert_eq!(mem.eligible(loc, &r2, Ordering::Relaxed), 1);
    }

    #[test]
    fn acquire_of_a_release_store_publishes_the_writers_view() {
        let mut mem = Memory::default();
        let data = mem.alloc(0);
        let flag = mem.alloc(0);
        let mut writer = View::default();
        mem.store(data, &mut writer, Ordering::Relaxed, 42);
        mem.store(flag, &mut writer, Ordering::Release, 1);
        let mut reader = View::default();
        // Reader picks the new flag value with Acquire...
        let v = mem.load(flag, &mut reader, Ordering::Acquire, 1);
        assert_eq!(v, 1);
        // ...and must now see the data write: only one store eligible.
        assert_eq!(mem.eligible(data, &reader, Ordering::Relaxed), 1);
        assert_eq!(mem.load(data, &mut reader, Ordering::Relaxed, 0), 42);
    }

    #[test]
    fn relaxed_rmw_reads_newest_but_publishes_nothing() {
        let mut mem = Memory::default();
        let data = mem.alloc(0);
        let ctr = mem.alloc(0);
        let mut a = View::default();
        mem.store(data, &mut a, Ordering::Relaxed, 7);
        mem.rmw(ctr, &mut a, Ordering::Relaxed, |v| v + 1);
        let mut b = View::default();
        let old = mem.rmw(ctr, &mut b, Ordering::Relaxed, |v| v + 1);
        assert_eq!(old, 1, "RMW atomicity: must read the newest store");
        // No release/acquire anywhere: b may still read stale data.
        assert_eq!(mem.eligible(data, &b, Ordering::Relaxed), 2);
    }

    #[test]
    fn acqrel_rmw_chain_is_transitive() {
        let mut mem = Memory::default();
        let data = mem.alloc(0);
        let ctr = mem.alloc(0);
        let mut a = View::default();
        mem.store(data, &mut a, Ordering::Relaxed, 7);
        mem.rmw(ctr, &mut a, Ordering::AcqRel, |v| v + 1);
        let mut b = View::default();
        mem.rmw(ctr, &mut b, Ordering::AcqRel, |v| v + 1);
        // b acquired a's release: the stale data store is unreadable.
        assert_eq!(mem.eligible(data, &b, Ordering::Relaxed), 1);
        let mut c = View::default();
        mem.rmw(ctr, &mut c, Ordering::AcqRel, |v| v + 1);
        assert_eq!(mem.eligible(data, &c, Ordering::Relaxed), 1, "transitive through the chain");
    }
}
