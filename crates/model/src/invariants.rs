//! The protocol invariants, stated exactly once.
//!
//! Both verification layers assert these same predicates: the model
//! tests in `tests/` (every interleaving, tiny sizes) and the width-8
//! stress suite in `crates/bench/tests/pool_stress.rs` (sampled
//! interleavings, realistic sizes). Each function panics with a
//! descriptive message on violation — inside [`crate::check::explore`]
//! that panic is the recorded violation; inside a `#[test]` it is the
//! test failure.

/// Chunk delivery is exactly-once: the claimed ranges partition
/// `0..len` — every index covered, none twice, none out of bounds.
pub fn assert_exactly_once(len: usize, claims: &[(usize, usize)]) {
    let mut counts = vec![0usize; len];
    for &(start, end) in claims {
        assert!(
            start < end && end <= len,
            "claim {start}..{end} is malformed or out of bounds for len {len}"
        );
        for c in &mut counts[start..end] {
            *c += 1;
        }
    }
    for (idx, &n) in counts.iter().enumerate() {
        assert!(n == 1, "index {idx} delivered {n} times (exactly-once violated)");
    }
}

/// Writes made inside the region are published to whoever observed
/// completion: every slot holds `expected(index)`, with 0 standing in
/// for "the write was lost / read stale".
pub fn assert_published(slots: &[usize], expected: impl Fn(usize) -> usize) {
    for (idx, &got) in slots.iter().enumerate() {
        let want = expected(idx);
        assert!(
            got == want,
            "slot {idx} holds {got}, expected {want} — a write was not published \
             across the completion edge"
        );
    }
}

/// Every shed reports `depth == capacity`: the snapshot is taken under
/// the queue lock, so racing pops can never make it under- or overshoot.
pub fn assert_sheds_at_capacity(capacity: usize, shed_depths: &[usize]) {
    for &depth in shed_depths {
        assert!(
            depth == capacity,
            "shed reported depth {depth}, capacity is {capacity} — the snapshot \
             must be the locked queue depth"
        );
    }
}

/// Queue conservation: once the queue is closed and drained, the items
/// consumers received are exactly the items producers successfully
/// pushed — nothing lost, nothing duplicated, nothing invented.
pub fn assert_conserved(mut pushed: Vec<usize>, mut popped: Vec<usize>) {
    pushed.sort_unstable();
    popped.sort_unstable();
    assert!(
        pushed == popped,
        "queue conservation violated: accepted pushes {pushed:?} != drained pops {popped:?}"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_once_accepts_a_partition_and_rejects_overlap() {
        assert_exactly_once(5, &[(0, 2), (2, 4), (4, 5)]);
        let overlap = std::panic::catch_unwind(|| assert_exactly_once(4, &[(0, 2), (1, 4)]));
        assert!(overlap.is_err());
        let gap = std::panic::catch_unwind(|| assert_exactly_once(4, &[(0, 2), (3, 4)]));
        assert!(gap.is_err());
    }

    #[test]
    fn published_catches_a_stale_slot() {
        assert_published(&[10, 11, 12], |i| 10 + i);
        let stale = std::panic::catch_unwind(|| assert_published(&[10, 0, 12], |i| 10 + i));
        assert!(stale.is_err());
    }

    #[test]
    fn conservation_catches_loss_and_duplication() {
        assert_conserved(vec![3, 1, 2], vec![1, 2, 3]);
        let lost = std::panic::catch_unwind(|| assert_conserved(vec![1, 2], vec![1]));
        assert!(lost.is_err());
        let duped = std::panic::catch_unwind(|| assert_conserved(vec![1, 2], vec![1, 2, 2]));
        assert!(duped.is_err());
    }
}
