//! The shim layer: `taor_model::sync::{AtomicUsize, Mutex, spawn, …}`.
//!
//! Production code imports its synchronization primitives from here
//! instead of `std::sync` (enforced by taor-lint's
//! `concurrency::naked-atomic` rule). In a normal build every item is a
//! plain re-export of the `std` type — zero overhead, byte-identical
//! behaviour, `const`-compatible statics. Under `--cfg taor_model` the
//! same paths resolve to the instrumented types in [`crate::check::sync`],
//! which route every operation through the exhaustive scheduler.
//!
//! Known limit of the `--cfg taor_model` configuration: the
//! instrumented constructors are not `const`, so crates with atomic
//! `static`s (e.g. the serve signal flag) do not build under it yet.
//! The model tests therefore verify the extracted protocol cores in
//! [`crate::proto::on_model`] rather than whole production crates; the
//! shim keeps the door open for full-crate checking later.

#[cfg(not(taor_model))]
pub use std::sync::atomic::{
    AtomicBool, AtomicI32, AtomicI64, AtomicIsize, AtomicU32, AtomicU64, AtomicU8, AtomicUsize,
    Ordering,
};
#[cfg(not(taor_model))]
pub use std::sync::{Condvar, Mutex, MutexGuard, WaitTimeoutResult};
#[cfg(not(taor_model))]
pub use std::thread::{spawn, yield_now, JoinHandle};

#[cfg(taor_model)]
pub use crate::check::sync::{
    spawn, yield_now, AtomicBool, AtomicUsize, Condvar, JoinHandle, Mutex, MutexGuard, Ordering,
    WaitTimeoutResult,
};
