#!/usr/bin/env python3
"""Smoke-test a freshly built `taor-serve` binary.

Asserts the service contract end to end, from outside the Rust
workspace: 200 for a valid wire crop, 400 for a malformed buffer,
keep-alive reuse (two requests over one connection, identical answers),
429 (+ Retry-After) when the admission queue is saturated, and a clean
exit 0 on SIGTERM. Stdlib only.

Usage: serve_smoke.py path/to/taor-serve
"""

import http.client
import signal
import struct
import subprocess
import sys
import threading
import time

WIRE_MAGIC = b"TAOR"
WIRE_VERSION = 1
FORMAT_RGB8 = 0


def wire_crop(width=48, height=48):
    """A valid RGB8 gradient crop in TAOR wire format."""
    header = WIRE_MAGIC + struct.pack("<BBII", WIRE_VERSION, FORMAT_RGB8, width, height)
    payload = bytearray()
    for y in range(height):
        for x in range(width):
            payload += bytes(((x * 5) % 256, (y * 5) % 256, ((x + y) * 2) % 256))
    return header + bytes(payload)


def post(addr, path, body, headers=None, timeout=30):
    conn = http.client.HTTPConnection(addr[0], addr[1], timeout=timeout)
    try:
        conn.request("POST", path, body=body, headers=headers or {})
        resp = conn.getresponse()
        return resp.status, dict(resp.getheaders()), resp.read()
    finally:
        conn.close()


def get(addr, path, timeout=30):
    conn = http.client.HTTPConnection(addr[0], addr[1], timeout=timeout)
    try:
        conn.request("GET", path)
        resp = conn.getresponse()
        return resp.status, dict(resp.getheaders()), resp.read()
    finally:
        conn.close()


def main():
    if len(sys.argv) != 2:
        sys.exit(__doc__)
    binary = sys.argv[1]

    # One worker, one queue slot, honour the test-delay header: the
    # saturation check below is deterministic, not a timing race.
    proc = subprocess.Popen(
        [
            binary,
            "--addr", "127.0.0.1:0",
            "--workers", "1",
            "--queue-cap", "1",
            "--batch", "1",
            "--no-siamese",
            "--allow-test-delay",
            "--deadline-ms", "15000",
        ],
        stdout=subprocess.PIPE,
        text=True,
    )
    try:
        line = proc.stdout.readline().strip()
        assert "listening on" in line, f"unexpected first line: {line!r}"
        host, _, port = line.rsplit(" ", 1)[-1].rpartition(":")
        addr = (host, int(port))
        print(f"server up at {addr[0]}:{addr[1]}")

        crop = wire_crop()

        # 1. A valid crop answers 200 with a recognition body.
        status, _, body_ok = post(addr, "/recognize", crop)
        assert status == 200, f"valid crop: expected 200, got {status}: {body_ok!r}"
        assert b'"class":' in body_ok and b'"ranking":' in body_ok, body_ok
        print("200 for a valid crop: ok")

        # 2. A malformed buffer answers a typed 400.
        status, _, body = post(addr, "/recognize", b"not a TAOR buffer")
        assert status == 400, f"malformed: expected 400, got {status}: {body!r}"
        assert b"bad crop" in body, body
        print("400 for a malformed buffer: ok")

        # 3. Keep-alive: two requests over ONE reused connection, both
        # answered, the recognition body identical to the fresh-
        # connection answer from check 1.
        conn = http.client.HTTPConnection(addr[0], addr[1], timeout=30)
        try:
            conn.request("POST", "/recognize", body=crop)
            resp = conn.getresponse()
            ka_status, ka_body = resp.status, resp.read()
            conn.request("GET", "/healthz")  # same socket, second request
            resp2 = conn.getresponse()
            ka2_status, ka2_body = resp2.status, resp2.read()
        finally:
            conn.close()
        assert ka_status == 200, f"keep-alive 1st request: {ka_status}: {ka_body!r}"
        assert ka_body == body_ok, "reused-connection body must match the fresh one"
        assert ka2_status == 200, f"keep-alive 2nd request: {ka2_status}: {ka2_body!r}"
        assert b'"status":"ok"' in ka2_body, ka2_body
        print("two requests over one reused connection: ok")

        # 4. Saturate: one slow request holds the worker, a second holds
        # the single queue slot, the rest must shed with 429.
        slow_results = []

        def slow():
            slow_results.append(
                post(addr, "/recognize", crop, {"X-Taor-Test-Delay-Ms": "3000"})[0]
            )

        threads = []
        for _ in range(2):
            t = threading.Thread(target=slow)
            t.start()
            threads.append(t)
            time.sleep(0.5)  # stagger: worker first, then the queue slot

        sheds = 0
        retry_after = False
        for _ in range(4):
            status, headers, _ = post(addr, "/recognize", crop)
            if status == 429:
                sheds += 1
                retry_after |= headers.get("Retry-After") == "1"
        for t in threads:
            t.join()
        assert sheds > 0, "a saturated queue must shed with 429"
        assert retry_after, "429 must carry Retry-After: 1"
        assert all(s == 200 for s in slow_results), f"slow requests: {slow_results}"
        print(f"429 under saturation ({sheds} shed, Retry-After seen): ok")

        # 5. The health snapshot counted the sheds.
        status, _, body = get(addr, "/healthz")
        assert status == 200, f"healthz: {status}"
        assert b'"shed":0' not in body, f"healthz must count sheds: {body!r}"
        print("healthz reports the shed count: ok")

        # 6. SIGTERM: graceful shutdown, exit code 0.
        proc.send_signal(signal.SIGTERM)
        code = proc.wait(timeout=30)
        assert code == 0, f"SIGTERM: expected exit 0, got {code}"
        print("clean SIGTERM shutdown: ok")
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()

    print("serve smoke: all checks passed")


if __name__ == "__main__":
    main()
