//! Integration: detector repeatability under known warps — connecting
//! `taor-imgproc::warp`, the three detectors and
//! `taor-features::evaluation`.

use taor::features::{
    matching_score, orb_detect_and_compute, repeatability, sift_detect_and_compute, OrbParams,
    SiftParams, Similarity,
};
use taor::imgproc::prelude::*;

/// A structured test card with corners, blobs and texture.
fn test_card() -> GrayImage {
    use taor::imgproc::draw::{p2, Canvas};
    let mut c = Canvas::new(128, 128, [20, 20, 20]);
    c.fill_rot_rect(46.0, 44.0, 42.0, 28.0, 0.35, [230, 230, 230]);
    c.fill_polygon(&[p2(80.0, 86.0), p2(114.0, 92.0), p2(86.0, 116.0)], [150, 150, 150]);
    c.fill_ellipse(34.0, 94.0, 12.0, 8.0, [200, 200, 200]);
    c.fill_rot_rect(94.0, 34.0, 18.0, 18.0, 0.8, [180, 180, 180]);
    rgb_to_gray(c.image())
}

#[test]
fn sift_repeatability_under_small_rotation() {
    let img = test_card();
    let angle = 0.2f32;
    let warp = Affine::rotation_about(64.0, 64.0, angle, 1.0);
    let warped = warp_affine(&img, &warp, 20).unwrap();

    let p = SiftParams::default();
    let (k1, d1) = sift_detect_and_compute(&img, &p).unwrap();
    let (k2, d2) = sift_detect_and_compute(&warped, &p).unwrap();
    assert!(!k1.is_empty() && !k2.is_empty());

    let (s, c) = angle.sin_cos();
    let t =
        Similarity { a: c, b: s, tx: 64.0 - c * 64.0 + s * 64.0, ty: 64.0 - s * 64.0 - c * 64.0 };
    let rep = repeatability(&k1, &k2, &t, 4.0);
    assert!(rep > 0.3, "SIFT repeatability under 0.2 rad: {rep}");

    // Matching score: ratio-test survivors should be mostly geometric.
    let matches = taor::features::knn_match_float(&d1, &d2).unwrap();
    let good = taor::features::ratio_test_matches(&matches, 0.8);
    if !good.is_empty() {
        let score = matching_score(&k1, &k2, &good, &t, 6.0);
        assert!(score > 0.3, "SIFT matching score: {score}");
    }
    let _ = d1;
}

#[test]
fn orb_repeatability_under_translation() {
    let img = test_card();
    let warp = Affine::translation(6.0, -4.0);
    let warped = warp_affine(&img, &warp, 20).unwrap();
    let p = OrbParams::default();
    let (k1, _) = orb_detect_and_compute(&img, &p).unwrap();
    let (k2, _) = orb_detect_and_compute(&warped, &p).unwrap();
    assert!(!k1.is_empty() && !k2.is_empty());
    let t = Similarity { a: 1.0, b: 0.0, tx: 6.0, ty: -4.0 };
    let rep = repeatability(&k1, &k2, &t, 3.0);
    assert!(rep > 0.4, "ORB repeatability under translation: {rep}");
}

#[test]
fn repeatability_collapses_under_wrong_transform() {
    let img = test_card();
    let p = OrbParams::default();
    let (k1, _) = orb_detect_and_compute(&img, &p).unwrap();
    if k1.len() < 4 {
        return;
    }
    // A transform that moves everything far away.
    let t = Similarity { a: 1.0, b: 0.0, tx: 500.0, ty: 500.0 };
    assert_eq!(repeatability(&k1, &k1, &t, 3.0), 0.0);
}
