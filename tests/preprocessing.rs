//! Integration: the §3.2 preprocessing pipeline against both corpora'
//! background conventions, across every class and many seeds.

use taor::core::prelude::*;
use taor::data::{nyu_set_subsampled, shapenet_set1, shapenet_set2, ObjectClass};

#[test]
fn every_catalog_view_preprocesses() {
    for seed in [1u64, 2019] {
        for ds in [shapenet_set1(seed), shapenet_set2(seed)] {
            for img in &ds.images {
                let p = preprocess(&img.image, Background::White, HIST_BINS);
                assert!(p.crop.width() > 0 && p.crop.height() > 0);
                assert!(p.hu.iter().all(|v| v.is_finite()));
                let mass: f64 = p.hist.as_slice().iter().sum();
                assert!((mass - 3.0).abs() < 1e-9, "histogram mass {mass}");
            }
        }
    }
}

#[test]
fn every_scene_crop_preprocesses() {
    let ds = nyu_set_subsampled(2019, 15);
    let mut fallbacks = 0usize;
    for img in &ds.images {
        let p = preprocess(&img.image, Background::Black, HIST_BINS);
        assert!(p.hu.iter().all(|v| v.is_finite()));
        if !p.contour_ok {
            fallbacks += 1;
        }
    }
    // The black-mask convention almost always yields a contour; a few
    // degenerate crops may fall back but never the majority.
    assert!(
        fallbacks * 10 < ds.len(),
        "{fallbacks}/{} scene crops fell back to whole-image features",
        ds.len()
    );
}

#[test]
fn catalog_crops_are_tighter_than_the_canvas() {
    let ds = shapenet_set1(7);
    let mut tighter = 0usize;
    for img in &ds.images {
        let p = preprocess(&img.image, Background::White, HIST_BINS);
        if p.crop.width() < img.image.width() || p.crop.height() < img.image.height() {
            tighter += 1;
        }
    }
    assert!(
        tighter * 2 > ds.len(),
        "cropping should usually shrink the frame: {tighter}/{}",
        ds.len()
    );
}

#[test]
fn preprocessing_is_deterministic() {
    let ds = shapenet_set1(11);
    let a = preprocess(&ds.images[0].image, Background::White, HIST_BINS);
    let b = preprocess(&ds.images[0].image, Background::White, HIST_BINS);
    assert_eq!(a.hu, b.hu);
    assert_eq!(a.crop, b.crop);
}

#[test]
fn wrong_background_convention_degrades_gracefully() {
    // Preprocessing a white-background view with the black-mask rule keeps
    // the whole frame as one blob rather than panicking.
    let ds = shapenet_set1(3);
    for img in ds.images.iter().take(10) {
        let p = preprocess(&img.image, Background::Black, HIST_BINS);
        assert!(p.hu.iter().all(|v| v.is_finite()));
    }
}

#[test]
fn paper_class_is_the_fragile_one_on_white() {
    // The near-white Paper models are the most likely to lose their
    // contour under the White convention — the paper's own Appendix shows
    // Paper rows collapsing to zero. Count per-class fallbacks.
    let ds = shapenet_set2(2019);
    let mut per_class = [0usize; ObjectClass::COUNT];
    for img in &ds.images {
        let p = preprocess(&img.image, Background::White, HIST_BINS);
        if !p.contour_ok {
            per_class[img.class.index()] += 1;
        }
    }
    let worst = per_class
        .iter()
        .enumerate()
        .max_by_key(|(_, &c)| c)
        .map(|(i, _)| ObjectClass::from_index(i).unwrap());
    // Either nothing fails (fine) or Paper leads the failures.
    let total: usize = per_class.iter().sum();
    if total > 0 {
        assert_eq!(worst, Some(ObjectClass::Paper), "fallbacks per class: {per_class:?}");
    }
}
