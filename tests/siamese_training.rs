//! Integration: Normalized-X-Corr training behaviour — learning on easy
//! data, early stopping, persistence, and the paper's recipe constants.

use taor::core::prelude::*;
use taor::data::shapenet_set2;
use taor::nn::{NetConfig, NormXCorrNet, TrainConfig};

#[test]
fn paper_hyperparameters_are_the_defaults() {
    let cfg = TrainConfig::default();
    assert_eq!(cfg.learning_rate, 1e-4);
    assert_eq!(cfg.decay, 1e-7);
    assert_eq!(cfg.batch_size, 16);
    assert_eq!(cfg.max_epochs, 100);
    assert_eq!(cfg.early_stop_eps, 1e-6);
    assert_eq!(cfg.early_stop_patience, 10);
    assert_eq!(taor::data::TRAIN_PAIRS, 9_450);
}

#[test]
fn loss_decreases_over_epochs_on_catalog_pairs() {
    let sns2 = shapenet_set2(2019);
    let mut cfg = SiameseConfig::quick();
    cfg.n_train_pairs = 200;
    cfg.train.max_epochs = 3;
    cfg.train.learning_rate = 5e-4;
    let (_, report) = train_siamese(&sns2, &cfg, |_| {});
    assert_eq!(report.epochs.len(), 3);
    let first = report.epochs.first().unwrap().mean_loss;
    let last = report.epochs.last().unwrap().mean_loss;
    assert!(last < first, "loss {first} -> {last}");
}

#[test]
fn model_roundtrips_through_json() {
    let sns2 = shapenet_set2(2019);
    let mut cfg = SiameseConfig::quick();
    cfg.n_train_pairs = 60;
    cfg.train.max_epochs = 1;
    let (net, _) = train_siamese(&sns2, &cfg, |_| {});

    let json = net.to_json();
    let restored = NormXCorrNet::from_json(&json).expect("valid model json");

    let pairs = taor::data::training_pairs(&sns2, 20, 7);
    let samples = pairs_to_samples(&pairs, &cfg.net);
    for s in &samples {
        let p1 = net.predict_similar(&s.a, &s.b).unwrap();
        let p2 = restored.predict_similar(&s.a, &s.b).unwrap();
        assert_eq!(p1, p2);
    }
}

#[test]
fn training_is_deterministic_per_seed() {
    let sns2 = shapenet_set2(2019);
    let mut cfg = SiameseConfig::quick();
    cfg.n_train_pairs = 40;
    cfg.train.max_epochs = 1;
    let (n1, r1) = train_siamese(&sns2, &cfg, |_| {});
    let (n2, r2) = train_siamese(&sns2, &cfg, |_| {});
    assert_eq!(r1.epochs[0].mean_loss, r2.epochs[0].mean_loss);
    assert_eq!(n1.to_json(), n2.to_json());
}

#[test]
fn net_config_controls_input_resolution() {
    let cfg = NetConfig { height: 48, width: 32, ..NetConfig::default() };
    let net = NormXCorrNet::new(cfg.clone()).unwrap();
    let sns2 = shapenet_set2(1);
    let t = image_to_tensor(&sns2.images[0].image, &cfg);
    assert_eq!(t.shape(), &[1, 3, 48, 32]);
    let (logits, _) = net.forward(&t, &t).unwrap();
    assert_eq!(logits.shape(), &[1, 2]);
}
