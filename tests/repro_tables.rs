//! Integration: the repro harness regenerates every table with the
//! expected layout on a miniature configuration.

use taor_bench::repro::{table1, table2, table3, table5, table6, table7or8, table9};
use taor_bench::ReproConfig;
use taor_core::SiameseConfig;

fn mini() -> ReproConfig {
    let mut cfg = ReproConfig::quick(2019);
    cfg.nyu_per_class = Some(6);
    cfg.siamese = SiameseConfig::quick();
    cfg
}

#[test]
fn table1_lists_all_classes_and_totals() {
    let out = table1(&mini());
    for name in [
        "Chair", "Bottle", "Paper", "Book", "Table", "Box", "Window", "Door", "Sofa", "Lamp",
        "Total",
    ] {
        assert!(out.text.contains(name), "missing {name}:\n{}", out.text);
    }
    assert!(out.text.contains("82"));
    assert!(out.text.contains("100"));
}

#[test]
fn table2_rows_match_paper_layout() {
    let out = table2(&mini());
    let expected_rows = [
        "Baseline",
        "Shape only L1",
        "Shape only L2",
        "Shape only L3",
        "Color only Correlation",
        "Color only Chi-square",
        "Color only Intersection",
        "Color only Hellinger",
        "Shape+Color (weighted sum)",
        "Shape+Color (micro-avg)",
        "Shape+Color (macro-avg)",
    ];
    for row in expected_rows {
        assert!(out.text.contains(row), "missing row {row}");
    }
    assert_eq!(out.records.len(), 22);
    for rec in &out.records {
        let acc = rec.cumulative_accuracy.expect("table 2 rows carry accuracy");
        assert!((0.0..=1.0).contains(&acc));
    }
}

#[test]
fn table3_reports_both_ratio_thresholds() {
    let out = table3(&mini());
    assert!(out.text.contains("ratio 0.5"));
    assert!(out.text.contains("ratio 0.75"));
    for label in ["SIFT", "SURF", "ORB"] {
        assert!(out.text.contains(label));
    }
}

#[test]
fn classwise_tables_have_four_measures() {
    for out in [table5(&mini()), table6(&mini()), table7or8(&mini(), 7), table9(&mini())] {
        for measure in ["Accuracy", "Precision", "Recall", "F1"] {
            assert!(out.text.contains(measure), "table {} missing {measure}", out.table);
        }
        assert!(out.text.contains("Chair") && out.text.contains("Lamp"));
    }
}

#[test]
fn table8_uses_the_swapped_direction() {
    let out = table7or8(&mini(), 8);
    assert!(out.text.contains("SNS2 v. SNS1"));
    for rec in &out.records {
        assert_eq!(rec.dataset, "SNS2 v. SNS1");
    }
}

#[test]
fn records_serialise_to_json() {
    let out = table2(&mini());
    let json = serde_json::to_string(&out.records).expect("serialisable");
    assert!(json.contains("cumulative_accuracy"));
    assert!(json.contains("NYU v. SNS1"));
}
