//! Integration: dataset builders and pair sets against the paper's
//! published cardinalities (Table 1, §3.4).

use taor::data::*;

#[test]
fn table1_cardinalities() {
    let sns1 = shapenet_set1(2019);
    assert_eq!(sns1.len(), 82);
    assert_eq!(sns1.class_counts(), [14, 12, 8, 8, 8, 8, 6, 4, 8, 6]);

    let sns2 = shapenet_set2(2019);
    assert_eq!(sns2.len(), 100);
    assert!(sns2.class_counts().iter().all(|&c| c == 10));
}

#[test]
fn pair_set_cardinalities_match_section_3_4() {
    let sns1 = shapenet_set1(2019);
    let sns2 = shapenet_set2(2019);
    let nyu = nyu_set_subsampled(2019, 12);

    let train = training_pairs(&sns2, TRAIN_PAIRS, 2019);
    assert_eq!(train.len(), 9_450);
    let similar = train.iter().filter(|p| p.label == 1).count();
    assert!((similar as f64 / 9_450.0 - 0.52).abs() < 0.002);

    let t1 = sns1_test_pairs(&sns1);
    assert_eq!(t1.len(), 3_321); // C(82, 2)

    let t2 = nyu_sns1_test_pairs(&nyu, &sns1, 2019);
    assert_eq!(t2.len(), 8_200);
    assert_eq!(t2.iter().filter(|p| p.label == 1).count(), NYU_TEST_SIMILAR);
}

#[test]
fn different_seeds_different_worlds() {
    let a = shapenet_set1(1);
    let b = shapenet_set1(2);
    let identical = a.images.iter().zip(&b.images).filter(|(x, y)| x.image == y.image).count();
    assert_eq!(identical, 0, "{identical} images survived a seed change");
}

#[test]
fn same_seed_is_bit_identical() {
    let a = nyu_set_subsampled(42, 5);
    let b = nyu_set_subsampled(42, 5);
    for (x, y) in a.images.iter().zip(&b.images) {
        assert_eq!(x.image, y.image);
        assert_eq!(x.class, y.class);
    }
}

#[test]
fn pair_labels_are_class_consistency() {
    let sns1 = shapenet_set1(9);
    for p in sns1_test_pairs(&sns1) {
        assert_eq!(p.label == 1, p.a.class == p.b.class);
    }
}

#[test]
fn catalog_and_scene_backgrounds_differ() {
    let sns1 = shapenet_set1(5);
    let nyu = nyu_set_subsampled(5, 2);
    // Corner pixels: white vs black conventions.
    assert_eq!(sns1.images[0].image.pixel(0, 0), [255, 255, 255]);
    let black_corners = nyu.images.iter().filter(|i| i.image.pixel(0, 0) == [0, 0, 0]).count();
    assert!(black_corners * 2 > nyu.len());
}

#[test]
fn synsets_ground_every_class() {
    for class in ObjectClass::ALL {
        let synset = class.synset();
        assert!(!synset.hypernyms.is_empty());
        // The grounding chain reaches a generic concept.
        let last = synset.hypernyms.last().unwrap();
        assert!(
            ["artifact", "matter", "structure"].contains(last),
            "{class:?} chain ends at {last}"
        );
    }
}
