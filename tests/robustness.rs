//! Failure injection: degenerate and adversarial inputs through every
//! public pipeline. Nothing here may panic — a robot's perception loop
//! sees garbage frames routinely.

use taor::core::prelude::*;
use taor::data::{shapenet_set1, ObjectClass};
use taor::features::{
    orb_detect_and_compute, sift_detect_and_compute, surf_detect_and_compute, OrbParams,
    SiftParams, SurfParams,
};
use taor::imgproc::prelude::*;

/// Pathological crops every stage must survive.
fn poison_crops() -> Vec<(&'static str, RgbImage)> {
    let mut salt_pepper = RgbImage::new(48, 48);
    for (i, v) in salt_pepper.as_raw_mut().iter_mut().enumerate() {
        *v = if (i * 2654435761usize) % 7 < 3 { 0 } else { 255 };
    }
    let mut one_px = RgbImage::new(33, 33);
    one_px.put_pixel(16, 16, [200, 30, 30]);
    vec![
        ("all-black", RgbImage::new(40, 40)),
        ("all-white", RgbImage::filled(40, 40, [255, 255, 255])),
        ("all-mid-grey", RgbImage::filled(40, 40, [128, 128, 128])),
        ("salt-and-pepper", salt_pepper),
        ("single-pixel-object", one_px),
        ("extreme-wide", RgbImage::filled(200, 2, [90, 120, 150])),
        ("extreme-tall", RgbImage::filled(2, 200, [90, 120, 150])),
        ("tiny", RgbImage::filled(3, 3, [10, 200, 60])),
    ]
}

#[test]
fn preprocessing_never_panics_on_poison() {
    for (name, img) in poison_crops() {
        for bg in [Background::White, Background::Black] {
            let p = preprocess(&img, bg, HIST_BINS);
            assert!(p.hu.iter().all(|v| v.is_finite()), "{name}/{bg:?}: non-finite Hu");
            let mass: f64 = p.hist.as_slice().iter().sum();
            assert!((mass - 3.0).abs() < 1e-9, "{name}/{bg:?}: histogram mass {mass}");
        }
    }
}

#[test]
fn recognizer_never_panics_on_poison() {
    let r = Recognizer::new(&shapenet_set1(2019), Method::default(), Background::Black);
    for (name, img) in poison_crops() {
        let rec = r.recognize(&img);
        assert!(rec.confidence.is_finite(), "{name}: confidence NaN");
        assert_eq!(rec.ranking.len(), ObjectClass::COUNT, "{name}: partial ranking");
    }
}

#[test]
fn detectors_reject_or_survive_poison() {
    for (name, img) in poison_crops() {
        let gray = rgb_to_gray(&img);
        // Each detector either returns Ok (possibly empty) or a typed
        // too-small error — never a panic.
        let sift = sift_detect_and_compute(&gray, &SiftParams::default());
        let surf = surf_detect_and_compute(&gray, &SurfParams::default());
        let orb = orb_detect_and_compute(&gray, &OrbParams::default());
        for (det, result_empty_ok) in
            [("sift", sift.is_ok()), ("surf", surf.is_ok()), ("orb", orb.is_ok())]
        {
            // Just force evaluation; the assert documents intent.
            let _ = (det, result_empty_ok);
        }
        let _ = name;
    }
}

#[test]
fn segmentation_handles_textureless_frames() {
    let cfg = SegmentConfig::default();
    // A frame that is all background: no segments, no panic.
    let flat = RgbImage::filled(320, 200, [180, 175, 160]);
    assert!(segment_frame(&flat, &cfg).is_empty());
    // A frame that is a single huge foreground blob.
    let mut blob = RgbImage::filled(320, 200, [180, 175, 160]);
    for y in 40..160 {
        for x in 80..240 {
            blob.put_pixel(x, y, [30, 60, 120]);
        }
    }
    let segs = segment_frame(&blob, &cfg);
    assert_eq!(segs.len(), 1);
    assert!(segs[0].area > 10_000);
}

#[test]
fn morphology_and_labeling_handle_extremes() {
    let empty = GrayImage::new(30, 30);
    assert!(label_components(&empty).components.is_empty());
    assert_eq!(erode(&empty, 3), empty);
    let full = GrayImage::filled(30, 30, [255]);
    let labels = label_components(&full);
    assert_eq!(labels.components.len(), 1);
    assert_eq!(labels.components[0].area, 900);
    // Erosion larger than the image: everything vanishes.
    let gone = erode(&full, 20);
    assert!(gone.as_raw().iter().all(|&v| v == 0));
}

#[test]
fn histogram_metrics_on_degenerate_distributions() {
    let black = rgb_histogram(&RgbImage::new(4, 4), 8).unwrap();
    let white = rgb_histogram(&RgbImage::filled(4, 4, [255, 255, 255]), 8).unwrap();
    for m in HistCompare::ALL {
        let v = compare_hist(&black, &white, m).unwrap();
        assert!(v.is_finite(), "{m:?} produced {v}");
        let self_v = compare_hist(&black, &black, m).unwrap();
        assert!(self_v.is_finite());
    }
}

#[test]
fn warp_of_tiny_images_is_safe() {
    let img = GrayImage::filled(2, 2, [100]);
    let t = Affine::rotation_about(1.0, 1.0, 0.7, 1.0);
    let w = warp_affine(&img, &t, 0).unwrap();
    assert_eq!(w.dimensions(), (2, 2));
}
