//! Integration: the end-to-end scene pipeline (the paper's future-work
//! setting) — rooms → segmentation → classification → evaluation.

use rand::SeedableRng;
use taor::core::prelude::*;
use taor::data::{patrol_frames, render_room, shapenet_set1, ObjectClass};

#[test]
fn segmentation_detects_most_objects_across_a_patrol() {
    let frames = patrol_frames(2019, 6);
    let cfg = SegmentConfig::default();
    let mut total = 0usize;
    let mut detected = 0usize;
    for scene in &frames {
        let segs = segment_frame(&scene.image, &cfg);
        for obj in &scene.objects {
            total += 1;
            if segs.iter().any(|s| iou(&s.bbox, &obj.bbox) >= 0.3) {
                detected += 1;
            }
        }
    }
    let rate = detected as f64 / total as f64;
    assert!(rate > 0.5, "detection rate {rate} ({detected}/{total})");
}

#[test]
fn end_to_end_recognition_beats_chance() {
    let refs = prepare_views(&shapenet_set1(2019), Background::White);
    let hybrid = HybridConfig::default();
    let classify = |crop: &taor::imgproc::RgbImage| {
        let q = RefView {
            class: ObjectClass::Chair,
            model_id: 0,
            feat: preprocess(crop, Background::Black, HIST_BINS),
        };
        classify_hybrid(std::slice::from_ref(&q), &refs, &hybrid, Aggregation::WeightedSum)[0]
    };
    let cfg = SegmentConfig::default();
    let mut agg = SceneEvaluation::default();
    for scene in patrol_frames(2019, 8) {
        let dets = recognise_frame(&scene.image, &cfg, classify);
        let e = evaluate_scene(&scene, &dets);
        agg.total_objects += e.total_objects;
        agg.detected += e.detected;
        agg.correctly_classified += e.correctly_classified;
        agg.false_positives += e.false_positives;
    }
    // Chance classification-given-detection would be ~0.10.
    assert!(
        agg.classification_rate() > 0.10,
        "classification | detected = {}",
        agg.classification_rate()
    );
    assert!(agg.detected > 0);
}

#[test]
fn segmented_crops_feed_the_preprocessing_pipeline() {
    let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
    let scene = render_room(&[ObjectClass::Sofa, ObjectClass::Lamp], &mut rng);
    for seg in segment_frame(&scene.image, &SegmentConfig::default()) {
        // Segmenter output is NYU-format (black mask): the §3.2 pipeline
        // must process it without panicking and produce finite features.
        let p = preprocess(&seg.crop, Background::Black, HIST_BINS);
        assert!(p.hu.iter().all(|v| v.is_finite()));
        let mass: f64 = p.hist.as_slice().iter().sum();
        assert!((mass - 3.0).abs() < 1e-9);
    }
}

#[test]
fn room_scenes_export_to_ppm() {
    let mut rng = rand::rngs::SmallRng::seed_from_u64(9);
    let scene = render_room(&[ObjectClass::Table], &mut rng);
    let mut path = std::env::temp_dir();
    path.push(format!("taor_scene_{}.ppm", std::process::id()));
    taor::imgproc::io::write_ppm(&path, &scene.image).unwrap();
    let back = taor::imgproc::io::read_ppm(&path).unwrap();
    assert_eq!(back, scene.image);
    std::fs::remove_file(&path).ok();
}
