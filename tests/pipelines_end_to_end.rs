//! Integration: all five pipelines, end to end, on reduced datasets.
//!
//! These tests assert the *qualitative* findings of the paper (every
//! pipeline beats chance in the controlled setting; relative orderings),
//! not absolute numbers.

use taor::core::prelude::*;
use taor::data::{nyu_set_subsampled, shapenet_set1, shapenet_set2};

fn sns_accuracy(preds: &[taor::data::ObjectClass], truth: &[taor::data::ObjectClass]) -> f64 {
    evaluate(truth, preds).cumulative_accuracy
}

#[test]
fn exploratory_pipelines_beat_chance_on_controlled_setting() {
    let refs = prepare_views(&shapenet_set2(2019), Background::White);
    let queries = prepare_views(&shapenet_set1(2019), Background::White);
    let truth = truth_of(&queries);

    // Shape-only is the paper's weakest family (0.12-0.19 on this
    // setting, with other configurations at exactly chance); require it
    // to stay at least near chance.
    for scorer in ShapeScorer::ALL {
        let acc = sns_accuracy(&classify_per_view(&queries, &refs, &scorer), &truth);
        assert!(acc >= 0.08, "{}: {acc}", scorer.name());
    }
    for scorer in ColorScorer::ALL {
        let acc = sns_accuracy(&classify_per_view(&queries, &refs, &scorer), &truth);
        assert!(acc > 0.10, "{}: {acc}", scorer.name());
    }
    let hybrid = HybridConfig::default();
    for agg in Aggregation::ALL {
        let acc = sns_accuracy(&classify_hybrid(&queries, &refs, &hybrid, agg), &truth);
        assert!(acc > 0.10, "{}: {acc}", agg.label());
    }
}

#[test]
fn colour_beats_shape_in_the_controlled_setting() {
    // The paper's central relative finding (§4): "colour-based features
    // are more prominent".
    let refs = prepare_views(&shapenet_set2(2019), Background::White);
    let queries = prepare_views(&shapenet_set1(2019), Background::White);
    let truth = truth_of(&queries);

    let best_shape = ShapeScorer::ALL
        .iter()
        .map(|s| sns_accuracy(&classify_per_view(&queries, &refs, s), &truth))
        .fold(0.0f64, f64::max);
    let best_color = ColorScorer::ALL
        .iter()
        .map(|s| sns_accuracy(&classify_per_view(&queries, &refs, s), &truth))
        .fold(0.0f64, f64::max);
    assert!(
        best_color > best_shape,
        "best colour {best_color} should beat best shape {best_shape}"
    );
}

#[test]
fn controlled_setting_beats_nyu_setting() {
    let sns1 = shapenet_set1(2019);
    let refs1 = prepare_views(&sns1, Background::White);
    let q_nyu = prepare_views(&nyu_set_subsampled(2019, 25), Background::Black);
    let q_sns = prepare_views(&shapenet_set2(2019), Background::White);

    let hybrid = HybridConfig::default();
    let acc_nyu = sns_accuracy(
        &classify_hybrid(&q_nyu, &refs1, &hybrid, Aggregation::WeightedSum),
        &truth_of(&q_nyu),
    );
    let acc_sns = sns_accuracy(
        &classify_hybrid(&q_sns, &refs1, &hybrid, Aggregation::WeightedSum),
        &truth_of(&q_sns),
    );
    assert!(acc_sns > acc_nyu, "controlled {acc_sns} should beat scene-matching {acc_nyu}");
}

#[test]
fn descriptor_pipelines_beat_chance_and_stay_in_a_band() {
    let sns1 = shapenet_set1(2019);
    let sns2 = shapenet_set2(2019);
    let truth: Vec<_> = sns1.images.iter().map(|i| i.class).collect();
    let mut accs = Vec::new();
    for kind in DescriptorKind::ALL {
        let q = extract_index(&sns1, kind);
        let r = extract_index(&sns2, kind);
        let acc = sns_accuracy(&classify_descriptors(&q, &r, 0.5), &truth);
        assert!(acc > 0.10, "{}: {acc}", kind.label());
        accs.push(acc);
    }
    // A narrow band, like the paper's 0.22-0.25.
    let spread =
        accs.iter().cloned().fold(0.0f64, f64::max) - accs.iter().cloned().fold(1.0f64, f64::min);
    assert!(spread < 0.25, "descriptor accuracies too spread out: {accs:?}");
}

#[test]
fn random_baseline_is_calibrated() {
    let queries = prepare_views(&shapenet_set1(2019), Background::White);
    let truth = truth_of(&queries);
    let acc = sns_accuracy(&random_baseline(&truth, 2019), &truth);
    assert!(acc < 0.25, "a random baseline cannot be this good: {acc}");
}

#[test]
fn siamese_quick_run_produces_bounded_metrics() {
    let sns2 = shapenet_set2(2019);
    let mut cfg = SiameseConfig::quick();
    cfg.n_train_pairs = 120;
    cfg.train.max_epochs = 1;
    let (net, _) = train_siamese(&sns2, &cfg, |_| {});
    let sns1 = shapenet_set1(2019);
    let pairs = taor::data::sns1_test_pairs(&sns1);
    let eval = evaluate_siamese(&net, &pairs[..200], &cfg.net);
    for m in [eval.similar, eval.dissimilar] {
        assert!((0.0..=1.0).contains(&m.precision));
        assert!((0.0..=1.0).contains(&m.recall));
        assert!((0.0..=1.0).contains(&m.f1));
    }
    assert_eq!(eval.similar.support + eval.dissimilar.support, 200);
}

#[test]
fn cosine_ablation_runs_end_to_end() {
    let sns2 = shapenet_set2(2019);
    let train = taor::data::training_pairs(&sns2, 150, 1);
    let model = CosineSiamese::fit(&train, 4);
    let preds = model.predict(&train);
    let truth: Vec<usize> = train.iter().map(|p| p.label).collect();
    let eval = evaluate_binary(&truth, &preds);
    // Fitted on its own training data, the threshold must do at least as
    // well as the majority class.
    let majority =
        truth.iter().filter(|&&l| l == 1).count().max(truth.iter().filter(|&&l| l == 0).count())
            as f64
            / truth.len() as f64;
    assert!(eval.accuracy >= majority - 1e-9, "{} < {majority}", eval.accuracy);
}
