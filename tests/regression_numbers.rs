//! Golden regression tests: pin the headline reproduction numbers at the
//! canonical seed so refactors that silently shift the calibrated result
//! shape fail loudly. Bands are generous — they protect the *orderings*
//! EXPERIMENTS.md documents, not exact decimals.

use taor::core::prelude::*;
use taor::data::{nyu_set_subsampled, shapenet_set1, shapenet_set2};

const SEED: u64 = 2019;

struct Columns {
    nyu: Vec<(String, f64)>,
    sns: Vec<(String, f64)>,
}

fn table2_columns() -> Columns {
    let sns1 = shapenet_set1(SEED);
    let sns2 = shapenet_set2(SEED);
    let nyu = nyu_set_subsampled(SEED, 50);
    let refs1 = prepare_views(&sns1, Background::White);
    let refs2 = prepare_views(&sns2, Background::White);
    let q_nyu = prepare_views(&nyu, Background::Black);
    let q_sns = prepare_views(&sns1, Background::White);
    let t_nyu = truth_of(&q_nyu);
    let t_sns = truth_of(&q_sns);

    let run = |queries: &[RefView], refs: &[RefView], truth: &[taor::data::ObjectClass]| {
        let mut out: Vec<(String, f64)> = Vec::new();
        for s in ShapeScorer::ALL {
            out.push((
                s.name(),
                evaluate(truth, &classify_per_view(queries, refs, &s)).cumulative_accuracy,
            ));
        }
        for s in ColorScorer::ALL {
            out.push((
                s.name(),
                evaluate(truth, &classify_per_view(queries, refs, &s)).cumulative_accuracy,
            ));
        }
        let hybrid = HybridConfig::default();
        for agg in Aggregation::ALL {
            out.push((
                agg.label().to_string(),
                evaluate(truth, &classify_hybrid(queries, refs, &hybrid, agg)).cumulative_accuracy,
            ));
        }
        out
    };
    Columns { nyu: run(&q_nyu, &refs1, &t_nyu), sns: run(&q_sns, &refs2, &t_sns) }
}

fn get(rows: &[(String, f64)], label: &str) -> f64 {
    rows.iter().find(|(l, _)| l == label).unwrap_or_else(|| panic!("row {label}")).1
}

#[test]
fn table2_shape_of_results_is_stable() {
    let cols = table2_columns();

    // --- NYU column: everything in the paper's band.
    for (label, acc) in &cols.nyu {
        assert!((0.05..0.40).contains(acc), "{label} NYU accuracy {acc} left the calibrated band");
    }
    // Shape family sits near the paper's 0.14-0.17.
    for mode in ["Shape only L1", "Shape only L2", "Shape only L3"] {
        let acc = get(&cols.nyu, mode);
        assert!((0.08..0.26).contains(&acc), "{mode} = {acc}");
    }

    // --- Controlled column: colour dominates shape (the paper's core
    // relative finding).
    let best_shape = ["Shape only L1", "Shape only L2", "Shape only L3"]
        .iter()
        .map(|m| get(&cols.sns, m))
        .fold(0.0f64, f64::max);
    let best_color = [
        "Color only Correlation",
        "Color only Chi-square",
        "Color only Intersection",
        "Color only Hellinger",
    ]
    .iter()
    .map(|m| get(&cols.sns, m))
    .fold(0.0f64, f64::max);
    assert!(
        best_color > best_shape,
        "colour ({best_color}) must beat shape ({best_shape}) in the controlled setting"
    );

    // Controlled setting beats the NYU setting for the strong pipelines.
    let hybrid_sns = get(&cols.sns, "Shape+Color (weighted sum)");
    let hybrid_nyu = get(&cols.nyu, "Shape+Color (weighted sum)");
    assert!(hybrid_sns > hybrid_nyu, "{hybrid_sns} !> {hybrid_nyu}");
}

#[test]
fn descriptor_band_is_stable() {
    let sns1 = shapenet_set1(SEED);
    let sns2 = shapenet_set2(SEED);
    let truth: Vec<_> = sns1.images.iter().map(|i| i.class).collect();
    for kind in DescriptorKind::ALL {
        let q = extract_index(&sns1, kind);
        let r = extract_index(&sns2, kind);
        let acc = evaluate(&truth, &classify_descriptors(&q, &r, 0.5)).cumulative_accuracy;
        assert!((0.15..0.55).contains(&acc), "{} = {acc} left the calibrated band", kind.label());
    }
}

#[test]
fn dataset_checksum_is_stable() {
    // A cheap content fingerprint of the canonical SNS1: any change to
    // the renderer or its RNG streams shows up here first, flagging that
    // EXPERIMENTS.md numbers need re-recording.
    let sns1 = shapenet_set1(SEED);
    let mut acc: u64 = 0;
    for img in &sns1.images {
        for (i, &b) in img.image.as_raw().iter().enumerate().step_by(97) {
            acc = acc.wrapping_mul(1099511628211).wrapping_add(b as u64 + i as u64);
        }
    }
    // If this assertion fires after an intentional renderer change,
    // re-run the repro harness, update EXPERIMENTS.md, and refresh the
    // constant. Current pin: the vendored-rand stream (vendor/rand),
    // which replaced the crates.io rand stream when the workspace went
    // offline-buildable.
    assert_eq!(acc, 16950068588372427540, "SNS1 content fingerprint changed");
}
